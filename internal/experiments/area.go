package experiments

import (
	"fmt"
	"strings"
)

// AreaModel reproduces the paper's Sec. 5.1–5.3 hardware-cost analysis:
// the die-area overhead of the APC signals and logic, expressed as
// fractions of the SKX die. The model parameterizes the same quantities
// the paper uses so the arithmetic is reproducible, not transcribed.
type AreaModel struct {
	// IOInterconnectWidthBits is the data width of the IO interconnect
	// the new long-distance signals ride along (128–512 in the paper).
	IOInterconnectWidthBits int
	// IOInterconnectDieFrac is the IO interconnect's share of the die
	// (paper: <6% of SKX).
	IOInterconnectDieFrac float64
	// IOControllerDieFrac is the IO controllers' share (paper: <15%).
	IOControllerDieFrac float64
	// ControllerModFrac is the per-controller modification cost
	// (paper: <0.5% of each controller, based on [31]).
	ControllerModFrac float64
	// GPMUDieFrac is the GPMU's share of the die (paper: <2%).
	GPMUDieFrac float64
	// APMUOfGPMUFrac is the APMU's size relative to the GPMU
	// (paper: ≤5%).
	APMUOfGPMUFrac float64
}

// DefaultAreaModel returns the paper's parameters (with the pessimistic
// 128-bit interconnect).
func DefaultAreaModel() AreaModel {
	return AreaModel{
		IOInterconnectWidthBits: 128,
		IOInterconnectDieFrac:   0.06,
		IOControllerDieFrac:     0.15,
		ControllerModFrac:       0.005,
		GPMUDieFrac:             0.02,
		APMUOfGPMUFrac:          0.05,
	}
}

// AreaResult is the computed overhead budget.
type AreaResult struct {
	Model AreaModel

	// Die-area fractions.
	IOSMSignals     float64 // 5 long-distance signals (AllowL0s, InL0s, Allow_CKE_OFF)
	IOSMControllers float64 // controller modifications
	CLMRSignals     float64 // 3 long-distance signals (Ret ×2 + ClkGate... per paper: 3)
	APMULogic       float64 // FSM inside/near the GPMU
	InCC1Routing    float64 // 3 long-distance InCC1 aggregation signals
	Total           float64
}

func init() {
	Define(110, "area", "die-area overhead of the APC hardware (paper Sec. 5.1-5.3)",
		func(Options) (Result, error) { return Area(DefaultAreaModel()), nil })
}

// Area computes the budget.
func Area(m AreaModel) *AreaResult {
	r := new(AreaResult)
	AreaInto(r, m)
	return r
}

// AreaInto computes the budget into a caller-owned result, so repeated
// evaluations (sensitivity sweeps, benchmarks) allocate nothing.
func AreaInto(r *AreaResult, m AreaModel) {
	*r = AreaResult{Model: m}
	perSignal := m.IOInterconnectDieFrac / float64(m.IOInterconnectWidthBits)
	// Sec. 5.1: IOSM adds five long-distance signals.
	r.IOSMSignals = 5 * perSignal
	// Controller modifications: <0.5% of the IO controllers' area.
	r.IOSMControllers = m.ControllerModFrac * m.IOControllerDieFrac
	// Sec. 5.2: CLMR adds three long-distance signals (Ret, PwrOk,
	// ClkGate); FCM RVID registers are negligible.
	r.CLMRSignals = 3 * perSignal
	// Sec. 5.3: APMU FSM is ≤5% of the GPMU, which is <2% of the die;
	// plus three long-distance InCC1 aggregation signals.
	r.APMULogic = m.APMUOfGPMUFrac * m.GPMUDieFrac
	r.InCC1Routing = 3 * perSignal
	r.Total = r.IOSMSignals + r.IOSMControllers + r.CLMRSignals + r.APMULogic + r.InCC1Routing
}

// Report implements Result.
func (r *AreaResult) Report() string { return r.String() }

// String renders the budget against the paper.
func (r *AreaResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sec 5.1-5.3: APC area overhead (%d-bit IO interconnect)\n",
		r.Model.IOInterconnectWidthBits)
	fine := func(f float64) string { return fmt.Sprintf("%.3f%%", f*100) }
	t := &table{header: []string{"Component", "Die area", "Paper bound"}}
	t.add("IOSM long-distance signals (5)", fine(r.IOSMSignals), "<0.24%")
	t.add("IOSM controller mods", fine(r.IOSMControllers), "<0.08%")
	t.add("CLMR signals (3)", fine(r.CLMRSignals), "<0.14%")
	t.add("APMU logic", fine(r.APMULogic), "<0.10%")
	t.add("InCC1 routing (3)", fine(r.InCC1Routing), "<0.14%")
	t.add("Total", fine(r.Total), "<0.75%")
	b.WriteString(t.String())
	return b.String()
}
