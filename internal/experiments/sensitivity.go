package experiments

import (
	"fmt"
	"strings"

	apc "agilepkgc/internal/core"
	"agilepkgc/internal/cpu"
	"agilepkgc/internal/pmu"
	"agilepkgc/internal/sim"
	"agilepkgc/internal/soc"
	"agilepkgc/internal/workload"
)

// SensitivityResult quantifies how each of APC's design choices buys its
// share of the headline result — the ablations DESIGN.md calls out:
//
//  1. Technique ablations: idle power with CLMR / CKE-off / IOSM
//     individually removed.
//  2. PLL policy: exit latency and idle power with PLLs kept on (APC)
//     vs powered off (PC6-style re-lock on exit).
//  3. APMU clock sweep: transition latency vs FSM frequency.
//  4. FIVR slew sweep: exit latency vs regulator slew rate.
//  5. End-to-end: power savings at a reference load for each ablated
//     configuration.
type SensitivityResult struct {
	BaselineIdleW float64 // Cshallow
	FullAPCIdleW  float64

	Ablations []AblationPoint

	PLLOnExit    sim.Duration // PC1A exit, PLLs locked
	PLLOffExit   sim.Duration // PC1A exit + relock, hypothetical
	PLLOnCostW   float64      // idle watts spent keeping PLLs locked
	APMUClockPts []APMUClockPoint
	SlewPts      []SlewPoint
}

// AblationPoint is one technique-removed configuration.
type AblationPoint struct {
	Name        string
	IdleW       float64
	IdleSavings float64 // vs Cshallow
	LoadSavings float64 // at the reference load (20K QPS Memcached)
}

// APMUClockPoint is one FSM frequency.
type APMUClockPoint struct {
	ClockMHz float64
	Entry    sim.Duration
	Exit     sim.Duration
}

// SlewPoint is one FIVR slew rate.
type SlewPoint struct {
	SlewMVPerNs float64
	Exit        sim.Duration
}

// Sensitivity runs the sweep suite.
func Sensitivity(opt Options) *SensitivityResult {
	r := &SensitivityResult{}
	settle := 10 * sim.Millisecond

	idleW := func(cfg soc.Config) float64 {
		s := soc.New(cfg)
		s.Engine.Run(settle)
		return s.TotalPower()
	}
	loadSavings := func(cfg soc.Config) float64 {
		spec := workload.Memcached(20000)
		sh := runPoint(soc.Cshallow, spec, opt)
		s := soc.New(cfg)
		srv := newServerForConfig(s, opt, spec)
		srv.Run(opt.Duration / 10)
		snap := s.Meter.Snapshot()
		srv.Run(opt.Duration)
		return (sh.avgTotalW - snap.AverageTotal()) / sh.avgTotalW
	}

	r.BaselineIdleW = idleW(soc.DefaultConfig(soc.Cshallow))
	r.FullAPCIdleW = idleW(soc.DefaultConfig(soc.CPC1A))

	mk := func(name string, mut func(*soc.Config)) AblationPoint {
		cfg := soc.DefaultConfig(soc.CPC1A)
		mut(&cfg)
		w := idleW(cfg)
		return AblationPoint{
			Name:        name,
			IdleW:       w,
			IdleSavings: 1 - w/r.BaselineIdleW,
			LoadSavings: loadSavings(cfg),
		}
	}
	r.Ablations = []AblationPoint{
		mk("full APC", func(*soc.Config) {}),
		mk("no CLMR", func(c *soc.Config) { c.NoCLMRetention = true }),
		mk("no CKE-off", func(c *soc.Config) { c.NoCKEOff = true }),
		mk("no IO standby", func(c *soc.Config) { c.NoIOStandby = true }),
	}

	// PLL policy: measured exit with PLLs locked; hypothetical exit with
	// a PC6-style relock serialized after PwrOk (the CLM clock cannot
	// ungate until its PLL locks).
	{
		s := soc.New(soc.DefaultConfig(soc.CPC1A))
		s.Engine.Run(settle)
		s.Cores[0].Enqueue(cpu.Work{Duration: sim.Microsecond})
		s.Engine.Run(s.Engine.Now() + sim.Millisecond)
		r.PLLOnExit = s.APMU.LastExitLatency()
		r.PLLOffExit = r.PLLOnExit + s.CLM.PLL().RelockLatency()
		r.PLLOnCostW = float64(len(s.PLLs)) * 0.007
	}

	// APMU clock sweep.
	for _, mhz := range []float64{100, 250, 500, 1000} {
		cfg := soc.DefaultConfig(soc.CPC1A)
		cfg.APMUConfig = apc.Config{ClockHz: mhz * 1e6, ActionCycles: 2}
		s := soc.New(cfg)
		s.Engine.Run(settle)
		s.Cores[0].Enqueue(cpu.Work{Duration: sim.Microsecond})
		s.Engine.Run(s.Engine.Now() + sim.Millisecond)
		if s.APMU.Entries(pmu.PC1A) == 0 {
			continue
		}
		r.APMUClockPts = append(r.APMUClockPts, APMUClockPoint{
			ClockMHz: mhz,
			Entry:    16*sim.Nanosecond + s.APMU.LastEntryLatency(),
			Exit:     s.APMU.LastExitLatency(),
		})
	}

	// FIVR slew sweep: the CLM ramp dominates exit latency, so exit
	// scales inversely with slew.
	for _, mv := range []float64{1, 2, 4, 8} {
		cfg := soc.DefaultConfig(soc.CPC1A)
		cfg.CLMParams.SlewVoltsPerNs = mv / 1000
		s := soc.New(cfg)
		s.Engine.Run(settle)
		s.Cores[0].Enqueue(cpu.Work{Duration: sim.Microsecond})
		s.Engine.Run(s.Engine.Now() + sim.Millisecond)
		r.SlewPts = append(r.SlewPts, SlewPoint{
			SlewMVPerNs: mv,
			Exit:        s.APMU.LastExitLatency(),
		})
	}
	return r
}

// String renders the sweep suite.
func (r *SensitivityResult) String() string {
	var b strings.Builder
	b.WriteString("Sensitivity: what each APC design choice buys\n\n")
	b.WriteString("Technique ablations (idle + 20K QPS Memcached):\n")
	t := &table{header: []string{"Configuration", "Idle power", "Idle savings", "Savings @20K"}}
	for _, a := range r.Ablations {
		t.add(a.Name, fmt.Sprintf("%.1fW", a.IdleW), pct(a.IdleSavings), pct(a.LoadSavings))
	}
	b.WriteString(t.String())

	fmt.Fprintf(&b, "\nPLL policy: exit %v with PLLs locked (cost %.0f mW idle) vs %v with PC6-style relock\n",
		r.PLLOnExit, r.PLLOnCostW*1000, r.PLLOffExit)

	b.WriteString("\nAPMU clock sweep (entry includes the fixed 16ns L0s window):\n")
	tc := &table{header: []string{"FSM clock", "Entry", "Exit"}}
	for _, p := range r.APMUClockPts {
		tc.add(fmt.Sprintf("%.0fMHz", p.ClockMHz), p.Entry.String(), p.Exit.String())
	}
	b.WriteString(tc.String())

	b.WriteString("\nFIVR slew sweep (300mV retention swing):\n")
	ts := &table{header: []string{"Slew", "PC1A exit"}}
	for _, p := range r.SlewPts {
		ts.add(fmt.Sprintf("%.0fmV/ns", p.SlewMVPerNs), p.Exit.String())
	}
	b.WriteString(ts.String())
	return b.String()
}
