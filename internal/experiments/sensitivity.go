package experiments

import (
	"fmt"
	"strings"

	apc "agilepkgc/internal/core"
	"agilepkgc/internal/cpu"
	"agilepkgc/internal/pmu"
	"agilepkgc/internal/sim"
	"agilepkgc/internal/soc"
	"agilepkgc/internal/workload"
)

// SensitivityResult quantifies how each of APC's design choices buys its
// share of the headline result — the ablations DESIGN.md calls out:
//
//  1. Technique ablations: idle power with CLMR / CKE-off / IOSM
//     individually removed.
//  2. PLL policy: exit latency and idle power with PLLs kept on (APC)
//     vs powered off (PC6-style re-lock on exit).
//  3. APMU clock sweep: transition latency vs FSM frequency.
//  4. FIVR slew sweep: exit latency vs regulator slew rate.
//  5. End-to-end: power savings at a reference load for each ablated
//     configuration.
type SensitivityResult struct {
	BaselineIdleW float64 // Cshallow
	FullAPCIdleW  float64

	Ablations []AblationPoint

	PLLOnExit    sim.Duration // PC1A exit, PLLs locked
	PLLOffExit   sim.Duration // PC1A exit + relock, hypothetical
	PLLOnCostW   float64      // idle watts spent keeping PLLs locked
	APMUClockPts []APMUClockPoint
	SlewPts      []SlewPoint
}

// AblationPoint is one technique-removed configuration.
type AblationPoint struct {
	Name        string
	IdleW       float64
	IdleSavings float64 // vs Cshallow
	LoadSavings float64 // at the reference load (20K QPS Memcached)
}

// APMUClockPoint is one FSM frequency.
type APMUClockPoint struct {
	ClockMHz float64
	Entry    sim.Duration
	Exit     sim.Duration
}

// SlewPoint is one FIVR slew rate.
type SlewPoint struct {
	SlewMVPerNs float64
	Exit        sim.Duration
}

func init() {
	Define(120, "sensitivity", "technique ablations, PLL policy, APMU clock, FIVR slew",
		func(o Options) (Result, error) { return Sensitivity(o), nil })
}

// Sensitivity runs the sweep suite.
func Sensitivity(opt Options) *SensitivityResult {
	r := &SensitivityResult{}
	settle := 10 * sim.Millisecond

	idleW := func(cfg soc.Config) float64 {
		s := soc.New(cfg)
		s.Engine.Run(settle)
		return s.TotalPower()
	}

	// The reference-load Cshallow baseline is shared by every ablation;
	// run it once instead of once per ablated configuration.
	refSpec := workload.Memcached(20000)
	shallowRefW := runPoint(soc.Cshallow, refSpec, opt).avgTotalW
	loadSavings := func(cfg soc.Config) float64 {
		s := soc.New(cfg)
		srv := newServerForConfig(s, opt, refSpec)
		srv.Run(opt.Duration / 10)
		snap := s.Meter.Snapshot()
		srv.Run(opt.Duration)
		return (shallowRefW - snap.AverageTotal()) / shallowRefW
	}

	r.BaselineIdleW = idleW(soc.DefaultConfig(soc.Cshallow))
	r.FullAPCIdleW = idleW(soc.DefaultConfig(soc.CPC1A))

	type ablation struct {
		name string
		mut  func(*soc.Config)
	}
	r.Ablations = Sweep(opt, []ablation{
		{"full APC", func(*soc.Config) {}},
		{"no CLMR", func(c *soc.Config) { c.NoCLMRetention = true }},
		{"no CKE-off", func(c *soc.Config) { c.NoCKEOff = true }},
		{"no IO standby", func(c *soc.Config) { c.NoIOStandby = true }},
	}, func(a ablation) AblationPoint {
		cfg := soc.DefaultConfig(soc.CPC1A)
		a.mut(&cfg)
		w := idleW(cfg)
		return AblationPoint{
			Name:        a.name,
			IdleW:       w,
			IdleSavings: 1 - w/r.BaselineIdleW,
			LoadSavings: loadSavings(cfg),
		}
	})

	// PLL policy: measured exit with PLLs locked; hypothetical exit with
	// a PC6-style relock serialized after PwrOk (the CLM clock cannot
	// ungate until its PLL locks).
	{
		s := soc.New(soc.DefaultConfig(soc.CPC1A))
		s.Engine.Run(settle)
		s.Cores[0].Enqueue(cpu.Work{Duration: sim.Microsecond})
		s.Engine.Run(s.Engine.Now() + sim.Millisecond)
		r.PLLOnExit = s.APMU.LastExitLatency()
		r.PLLOffExit = r.PLLOnExit + s.CLM.PLL().RelockLatency()
		r.PLLOnCostW = float64(len(s.PLLs)) * 0.007
	}

	// APMU clock sweep.
	for _, p := range Sweep(opt, []float64{100, 250, 500, 1000}, func(mhz float64) APMUClockPoint {
		cfg := soc.DefaultConfig(soc.CPC1A)
		cfg.APMUConfig = apc.Config{ClockHz: mhz * 1e6, ActionCycles: 2}
		s := soc.New(cfg)
		s.Engine.Run(settle)
		s.Cores[0].Enqueue(cpu.Work{Duration: sim.Microsecond})
		s.Engine.Run(s.Engine.Now() + sim.Millisecond)
		if s.APMU.Entries(pmu.PC1A) == 0 {
			return APMUClockPoint{}
		}
		return APMUClockPoint{
			ClockMHz: mhz,
			Entry:    16*sim.Nanosecond + s.APMU.LastEntryLatency(),
			Exit:     s.APMU.LastExitLatency(),
		}
	}) {
		if p.ClockMHz != 0 {
			r.APMUClockPts = append(r.APMUClockPts, p)
		}
	}

	// FIVR slew sweep: the CLM ramp dominates exit latency, so exit
	// scales inversely with slew.
	r.SlewPts = Sweep(opt, []float64{1, 2, 4, 8}, func(mv float64) SlewPoint {
		cfg := soc.DefaultConfig(soc.CPC1A)
		cfg.CLMParams.SlewVoltsPerNs = mv / 1000
		s := soc.New(cfg)
		s.Engine.Run(settle)
		s.Cores[0].Enqueue(cpu.Work{Duration: sim.Microsecond})
		s.Engine.Run(s.Engine.Now() + sim.Millisecond)
		return SlewPoint{
			SlewMVPerNs: mv,
			Exit:        s.APMU.LastExitLatency(),
		}
	})
	return r
}

// Report implements Result.
func (r *SensitivityResult) Report() string { return r.String() }

// String renders the sweep suite.
func (r *SensitivityResult) String() string {
	var b strings.Builder
	b.WriteString("Sensitivity: what each APC design choice buys\n\n")
	b.WriteString("Technique ablations (idle + 20K QPS Memcached):\n")
	t := &table{header: []string{"Configuration", "Idle power", "Idle savings", "Savings @20K"}}
	for _, a := range r.Ablations {
		t.add(a.Name, fmt.Sprintf("%.1fW", a.IdleW), pct(a.IdleSavings), pct(a.LoadSavings))
	}
	b.WriteString(t.String())

	fmt.Fprintf(&b, "\nPLL policy: exit %v with PLLs locked (cost %.0f mW idle) vs %v with PC6-style relock\n",
		r.PLLOnExit, r.PLLOnCostW*1000, r.PLLOffExit)

	b.WriteString("\nAPMU clock sweep (entry includes the fixed 16ns L0s window):\n")
	tc := &table{header: []string{"FSM clock", "Entry", "Exit"}}
	for _, p := range r.APMUClockPts {
		tc.add(fmt.Sprintf("%.0fMHz", p.ClockMHz), p.Entry.String(), p.Exit.String())
	}
	b.WriteString(tc.String())

	b.WriteString("\nFIVR slew sweep (300mV retention swing):\n")
	ts := &table{header: []string{"Slew", "PC1A exit"}}
	for _, p := range r.SlewPts {
		ts.add(fmt.Sprintf("%.0fmV/ns", p.SlewMVPerNs), p.Exit.String())
	}
	b.WriteString(ts.String())
	return b.String()
}
