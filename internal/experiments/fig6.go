package experiments

import (
	"fmt"
	"strings"

	"agilepkgc/internal/cpu"
	"agilepkgc/internal/soc"
	"agilepkgc/internal/workload"
)

// Fig6Point is one QPS point of paper Fig. 6: core C-state residency and
// the PC1A opportunity on the Cshallow baseline.
type Fig6Point struct {
	QPS float64

	// (a) average per-core residencies.
	CC0Residency float64
	CC1Residency float64

	// (b) PC1A opportunity: true and SoCWatch-censored (≥10 µs) all-idle
	// fraction.
	AllIdleTrue     float64
	AllIdleCensored float64

	// (c) idle-period length distribution.
	IdlePeriods      uint64
	FracIn20To200us  float64
	IdleP50, IdleP90 float64 // seconds
}

// Fig6Result is the sweep plus the low-load distribution detail.
type Fig6Result struct {
	Points []Fig6Point
}

// DefaultFig6QPS is the paper's low-load x-axis.
var DefaultFig6QPS = []float64{4000, 10000, 20000, 50000, 100000}

func init() {
	Define(70, "fig6", "PC1A opportunity: residencies and idle periods (QPS sweep, paper Fig. 6)",
		func(o Options) (Result, error) { return Fig6(o, DefaultFig6QPS), nil })
}

// Fig6 measures the PC1A opportunity on the Cshallow baseline across
// the given request-rate axis.
func Fig6(opt Options, qpsList []float64) *Fig6Result {
	res := &Fig6Result{}
	res.Points = Sweep(opt, qpsList, func(qps float64) Fig6Point {
		run := runPoint(soc.Cshallow, workload.Memcached(qps), opt)
		tr := run.tracer
		h := tr.IdlePeriods()
		return Fig6Point{
			QPS:             qps,
			CC0Residency:    tr.MeanResidency(cpu.CC0),
			CC1Residency:    tr.MeanResidency(cpu.CC1),
			AllIdleTrue:     tr.AllIdleFraction(),
			AllIdleCensored: tr.CensoredAllIdleFraction(),
			IdlePeriods:     tr.IdlePeriodCount(),
			FracIn20To200us: h.FractionBetween(20e-6, 200e-6),
			IdleP50:         h.Quantile(0.50),
			IdleP90:         h.Quantile(0.90),
		}
	})
	return res
}

// Report implements Result.
func (r *Fig6Result) Report() string { return r.String() }

// String renders all three panels.
func (r *Fig6Result) String() string {
	var b strings.Builder
	b.WriteString("Fig 6(a): core C-state residency, Cshallow (paper: CC1 76-98% at <=100K QPS)\n")
	ta := &table{header: []string{"QPS", "CC0", "CC1"}}
	for _, p := range r.Points {
		ta.add(fmt.Sprintf("%.0fK", p.QPS/1000), pct(p.CC0Residency), pct(p.CC1Residency))
	}
	b.WriteString(ta.String())

	b.WriteString("\nFig 6(b): PC1A residency opportunity (paper, censored: 77% @4K, 20% @50K, >=12% @<=100K)\n")
	tb := &table{header: []string{"QPS", "all-idle (true)", "all-idle (SoCWatch >=10us)", "idle periods"}}
	for _, p := range r.Points {
		tb.add(fmt.Sprintf("%.0fK", p.QPS/1000), pct(p.AllIdleTrue), pct(p.AllIdleCensored),
			fmt.Sprintf("%d", p.IdlePeriods))
	}
	b.WriteString(tb.String())

	b.WriteString("\nFig 6(c): fully-idle period lengths (paper: at low load ~60% in 20-200us)\n")
	tc := &table{header: []string{"QPS", "frac 20-200us", "p50", "p90"}}
	for _, p := range r.Points {
		tc.add(fmt.Sprintf("%.0fK", p.QPS/1000), pct(p.FracIn20To200us),
			us(p.IdleP50), us(p.IdleP90))
	}
	b.WriteString(tc.String())
	return b.String()
}
