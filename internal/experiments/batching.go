package experiments

import (
	"fmt"
	"strings"

	"agilepkgc/internal/pmu"
	"agilepkgc/internal/server"
	"agilepkgc/internal/sim"
	"agilepkgc/internal/soc"
	"agilepkgc/internal/workload"
)

// BatchingPoint is one epoch setting of the active-period
// synchronization extension.
type BatchingPoint struct {
	Epoch         sim.Duration
	Watts         float64
	SavingsFrac   float64 // vs Cshallow unbatched
	PC1AResidency float64
	MeanLatency   float64
	P99Latency    float64
	LatencyCost   float64 // mean vs unbatched CPC1A
}

// BatchingResult evaluates the extension the paper's Sec. 8 calls
// additive to APC: delaying dispatch to epoch boundaries so that cores
// are active together and idle together, lengthening full-system-idle
// periods and therefore PC1A residency — at a bounded latency cost.
type BatchingResult struct {
	QPS           float64
	ShallowWatts  float64
	UnbatchedMean float64
	Points        []BatchingPoint
}

// DefaultBatchingQPS is the fixed Memcached load of the epoch sweep.
const DefaultBatchingQPS = 50000

// DefaultBatchingEpochs is the swept epoch axis; 0 is the unbatched
// reference point.
var DefaultBatchingEpochs = []sim.Duration{0, 20 * sim.Microsecond, 50 * sim.Microsecond, 100 * sim.Microsecond}

func init() {
	Define(130, "batching", "epoch-aligned dispatch extension (epoch sweep, paper Sec. 8)",
		func(o Options) (Result, error) { return Batching(o, DefaultBatchingQPS, DefaultBatchingEpochs), nil })
}

// Batching sweeps the epoch length at a fixed Memcached load.
func Batching(opt Options, qps float64, epochs []sim.Duration) *BatchingResult {
	spec := workload.Memcached(qps)
	res := &BatchingResult{QPS: qps}

	sh := runPoint(soc.Cshallow, spec, opt)
	res.ShallowWatts = sh.avgTotalW

	// Each epoch point is an independent engine; the cross-point
	// fractions (vs Cshallow, vs the unbatched epoch) are derived
	// afterwards in point order.
	res.Points = Sweep(opt, epochs, func(epoch sim.Duration) BatchingPoint {
		sys := soc.New(soc.DefaultConfig(soc.CPC1A))
		scfg := server.DefaultConfig()
		scfg.Seed = opt.Seed
		scfg.BatchEpoch = epoch
		srv := server.New(sys, scfg, spec)
		srv.Run(opt.Duration / 10)
		snap := sys.Meter.Snapshot()
		t0 := sys.Engine.Now()
		srv.Run(opt.Duration)

		return BatchingPoint{
			Epoch:       epoch,
			Watts:       snap.AverageTotal(),
			MeanLatency: srv.Latencies().Mean(),
			P99Latency:  srv.Latencies().Quantile(0.99),
			PC1AResidency: float64(sys.APMU.Residency(pmu.PC1A)) /
				float64(sys.Engine.Now()-t0+1),
		}
	})
	for i := range res.Points {
		p := &res.Points[i]
		p.SavingsFrac = (res.ShallowWatts - p.Watts) / res.ShallowWatts
		if p.Epoch == 0 {
			res.UnbatchedMean = p.MeanLatency
		}
		if res.UnbatchedMean > 0 {
			p.LatencyCost = (p.MeanLatency - res.UnbatchedMean) / res.UnbatchedMean
		}
	}
	return res
}

// Report implements Result.
func (r *BatchingResult) Report() string { return r.String() }

// String renders the sweep.
func (r *BatchingResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: epoch-aligned dispatch (active-period sync) at %.0f QPS\n", r.QPS)
	fmt.Fprintf(&b, "(paper Sec. 8: synchronizing active/idle periods across cores is additive to APC)\n")
	t := &table{header: []string{"Epoch", "Power", "Savings vs Cshallow", "PC1A residency", "Mean lat", "p99", "Lat cost"}}
	for _, p := range r.Points {
		name := "off"
		if p.Epoch > 0 {
			name = p.Epoch.String()
		}
		t.add(name, fmt.Sprintf("%.1fW", p.Watts), pct(p.SavingsFrac), pct(p.PC1AResidency),
			us(p.MeanLatency), us(p.P99Latency), fmt.Sprintf("%+.1f%%", p.LatencyCost*100))
	}
	b.WriteString(t.String())
	return b.String()
}
