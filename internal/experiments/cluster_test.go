package experiments

import (
	"errors"
	"strings"
	"testing"

	"agilepkgc/internal/cluster"
)

func TestClusterScalingShape(t *testing.T) {
	opt := QuickOptions()
	opt.Duration /= 2
	res, err := ClusterScaling(opt, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 { // 2 sizes × {round_robin, power_aware}
		t.Fatalf("want 4 points, got %d", len(res.Points))
	}
	// The two 1-server points must agree exactly: with one member every
	// policy routes identically, so any divergence is nondeterminism.
	rr1, pa1 := res.Points[0], res.Points[1]
	if rr1.Servers != 1 || pa1.Servers != 1 {
		t.Fatalf("unexpected point order: %+v", res.Points)
	}
	if rr1.Fleet.Served != pa1.Fleet.Served || rr1.Fleet.TotalWatts != pa1.Fleet.TotalWatts {
		t.Errorf("1-server fleets diverge across policies: %+v vs %+v", rr1.Fleet, pa1.Fleet)
	}
	// Fixed aggregate load on more servers must cost more fleet power
	// (each added chassis burns idle watts) — the energy-proportionality
	// deficit the experiment exists to show.
	rr2 := res.Points[2]
	if rr2.Fleet.TotalWatts <= rr1.Fleet.TotalWatts {
		t.Errorf("2-server fleet cheaper than 1-server at same load: %g <= %g",
			rr2.Fleet.TotalWatts, rr1.Fleet.TotalWatts)
	}

	if _, err := ClusterScaling(opt, nil); err == nil {
		t.Error("empty size list accepted")
	}
	if _, err := ClusterScaling(opt, []int{0}); err == nil {
		t.Error("zero fleet size accepted")
	}
}

func TestClusterPolicyShape(t *testing.T) {
	opt := QuickOptions()
	opt.Duration /= 2
	res, err := ClusterPolicy(opt, DefaultClusterPolicies)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("want 3 points, got %d", len(res.Points))
	}
	for i, pol := range DefaultClusterPolicies {
		if res.Points[i].Policy != pol.String() {
			t.Errorf("point %d policy %q, want %q", i, res.Points[i].Policy, pol)
		}
		if len(res.Points[i].Fleet.Servers) != DefaultClusterPolicyServers {
			t.Errorf("point %d missing per-server stats", i)
		}
	}
	if _, err := ClusterPolicy(opt, nil); err == nil {
		t.Error("empty policy list accepted")
	}
}

// TestClusterExperimentsSerialParallelBitIdentical locks the fleet
// experiments into the repo-wide determinism contract. This is the test
// that catches shared mutable workload state (an MMPP2 arrival process
// reused across concurrently-running points): serial and parallel runs
// must render identical bytes.
func TestClusterExperimentsSerialParallelBitIdentical(t *testing.T) {
	opt := QuickOptions()
	opt.Duration /= 2
	serial, parallel := opt, opt
	serial.Parallelism = 1
	parallel.Parallelism = 8

	sp, err := ClusterPolicy(serial, DefaultClusterPolicies)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := ClusterPolicy(parallel, DefaultClusterPolicies)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Report() != pp.Report() {
		t.Errorf("cluster-policy depends on parallelism:\nserial:\n%s\nparallel:\n%s",
			sp.Report(), pp.Report())
	}

	ss, err := ClusterScaling(serial, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	ps, err := ClusterScaling(parallel, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if ss.Report() != ps.Report() {
		t.Error("cluster-scaling depends on parallelism")
	}
}

// failAfter fails every write after the first n succeed.
type failAfter struct {
	n   int
	err error
}

func (w *failAfter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, w.err
	}
	w.n--
	return len(p), nil
}

type writeCounter struct{ writes int }

func (w *writeCounter) Write(p []byte) (int, error) {
	w.writes++
	return len(p), nil
}

// TestClusterCSVPropagatesWriterErrors fails the writer at every prefix
// of the fleet CSV (header, aggregate rows, per-server rows): each
// failure must propagate, not truncate silently.
func TestClusterCSVPropagatesWriterErrors(t *testing.T) {
	opt := QuickOptions()
	opt.Duration /= 10
	res, err := ClusterPolicy(opt, []cluster.Policy{cluster.RoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	var ok strings.Builder
	if err := res.WriteCSV(&ok); err != nil {
		t.Fatal(err)
	}
	cw := &writeCounter{}
	if err := res.WriteCSV(cw); err != nil {
		t.Fatal(err)
	}
	if cw.writes < 2+DefaultClusterPolicyServers { // header + aggregate + per-server rows
		t.Fatalf("expected at least %d writes, got %d", 2+DefaultClusterPolicyServers, cw.writes)
	}
	sentinel := errors.New("disk full")
	for n := 0; n < cw.writes; n++ {
		if err := res.WriteCSV(&failAfter{n: n, err: sentinel}); !errors.Is(err, sentinel) {
			t.Errorf("failure after %d writes was swallowed: got %v", n, err)
		}
	}
}
