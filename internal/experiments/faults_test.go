package experiments

import (
	"reflect"
	"strings"
	"testing"
)

// TestFaultResilienceShape pins the artifact's structure and its
// physics: the MTBF-0 rows are crash-free, every injected row crashes
// and recovers (retries fire, goodput stays positive), and the
// conservation invariant OK + Failed + Shed = Generated holds on every
// point — the acceptance criterion of the experiment.
func TestFaultResilienceShape(t *testing.T) {
	opt := QuickOptions()
	res, err := FaultResilience(opt, DefaultFaultMTBFs)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(DefaultFaultPolicies) * len(DefaultFaultMTBFs); len(res.Points) != want {
		t.Fatalf("want %d points, got %d", want, len(res.Points))
	}
	for _, p := range res.Points {
		if got := p.Fleet.OK + p.Fleet.Failed + p.Fleet.Shed; got != p.Fleet.Generated {
			t.Errorf("%s mtbf=%g: OK %d + Failed %d + Shed %d = %d, want Generated %d",
				p.Policy, p.MTBFUS, p.Fleet.OK, p.Fleet.Failed, p.Fleet.Shed, got, p.Fleet.Generated)
		}
		if p.Fleet.GoodputQPS <= 0 {
			t.Errorf("%s mtbf=%g: no goodput", p.Policy, p.MTBFUS)
		}
		if p.MTBFUS == 0 {
			if p.Fleet.Crashes != 0 {
				t.Errorf("%s baseline crashed %d times", p.Policy, p.Fleet.Crashes)
			}
			continue
		}
		if p.Fleet.Crashes == 0 {
			t.Errorf("%s mtbf=%g never crashed", p.Policy, p.MTBFUS)
		}
		if p.Fleet.Retried == 0 {
			t.Errorf("%s mtbf=%g: crashes with a retry budget produced no retries", p.Policy, p.MTBFUS)
		}
		if p.Fleet.RecoveryP99 <= 0 {
			t.Errorf("%s mtbf=%g: no recovery percentile despite crashes", p.Policy, p.MTBFUS)
		}
	}
}

// TestFaultResilienceDeterministicAcrossParallelism locks the
// serial-vs-parallel bit-identity contract for the fault path: the
// fault RNG streams hang off each point's own engine, so fan-out must
// not move a byte.
func TestFaultResilienceDeterministicAcrossParallelism(t *testing.T) {
	serial, parallel := QuickOptions(), QuickOptions()
	parallel.Parallelism = 4
	a, err := FaultResilience(serial, DefaultFaultMTBFs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FaultResilience(parallel, DefaultFaultMTBFs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("serial and parallel fault-resilience results differ")
	}
	if a.Report() != b.Report() {
		t.Error("serial and parallel reports differ")
	}
}

// TestFaultResilienceCSV sanity-checks the CSV shape: header plus one
// aggregate and eight per-server rows per point.
func TestFaultResilienceCSV(t *testing.T) {
	opt := QuickOptions()
	opt.Duration /= 10
	res, err := FaultResilience(opt, DefaultFaultMTBFs[:2])
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := res.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	perPoint := 1 + DefaultFaultTopology.Servers()
	if want := 1 + len(res.Points)*perPoint; len(lines) != want {
		t.Fatalf("want %d CSV lines, got %d", want, len(lines))
	}
	if !strings.HasPrefix(lines[0], "policy,mtbf_us,server,rack,") {
		t.Errorf("unexpected CSV header %q", lines[0])
	}
}
