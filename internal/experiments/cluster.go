package experiments

// The two cluster experiments lift the paper's energy-proportionality
// argument from one SoC to the fleet, where the related work the paper
// positions against (CARB/µDPM-style batching, load concentration)
// actually operates: at the load balancer. cluster-scaling holds the
// aggregate request rate fixed and grows the fleet — per-server load
// falls, idle periods lengthen, and the spread-vs-pack gap widens.
// cluster-policy holds the fleet fixed and duels the three routing
// policies on bursty traffic.

import (
	"fmt"
	"io"
	"strings"

	"agilepkgc/internal/cluster"
	"agilepkgc/internal/sim"
	"agilepkgc/internal/workload"
)

// Defaults for the cluster experiments, exported so callers can rerun
// the registered artifacts programmatically with explicit axes.
var (
	// DefaultClusterSizes are the fleet sizes cluster-scaling sweeps.
	DefaultClusterSizes = []int{1, 2, 4, 8}
	// DefaultClusterPolicies is the head-to-head order of cluster-policy.
	DefaultClusterPolicies = []cluster.Policy{cluster.RoundRobin, cluster.LeastLoaded, cluster.PowerAware}
)

// Fixed operating points of the registered cluster experiments.
const (
	// DefaultClusterAggregateQPS is the fleet-wide Memcached arrival
	// rate held constant while cluster-scaling grows the fleet (≈21%
	// utilization on one 10-core server, ≈2.6% spread over eight).
	DefaultClusterAggregateQPS = 100000.0
	// DefaultClusterP99Target is the latency budget the power_aware
	// policy packs against in both experiments.
	DefaultClusterP99Target = 300 * sim.Microsecond
	// DefaultClusterPolicyServers and DefaultClusterPolicyQPS fix the
	// cluster-policy duel: four servers under bursty aggregate traffic.
	DefaultClusterPolicyServers = 4
	DefaultClusterPolicyQPS     = 60000.0
	// DefaultClusterPolicyBurstiness matches the bursty Memcached shape
	// the batching experiment uses.
	DefaultClusterPolicyBurstiness = 8.0
)

func init() {
	Define(150, "cluster-scaling",
		"fleet latency/energy vs size at fixed aggregate QPS (spread vs pack)",
		func(o Options) (Result, error) { return ClusterScaling(o, DefaultClusterSizes) })
	Define(160, "cluster-policy",
		"round_robin vs least_loaded vs power_aware on a bursty fleet",
		func(o Options) (Result, error) { return ClusterPolicy(o, DefaultClusterPolicies) })
}

// ClusterPoint is one measured fleet operating point. Fleet is a named
// field, not an embedded one: Measurement's per-server stats slice is
// also called Servers, and embedding would make the JSON encoder drop
// it in favor of the fleet-size field.
type ClusterPoint struct {
	Servers int                 `json:"servers"`
	Policy  string              `json:"policy"`
	Fleet   cluster.Measurement `json:"fleet"`
}

// runFleet builds and measures one flat fleet of n default CPC1A
// machines (rack.go's measureFleet with the trivial topology — an
// explicit Flat(n) assembles the identical event sequence, which
// TestFlatTopologyMatchesRackless pins).
func runFleet(reuse *cluster.Reuse, opt Options, n int, pol cluster.Policy, specFn func() workload.Spec) ClusterPoint {
	return ClusterPoint{
		Servers: n,
		Policy:  pol.String(),
		Fleet: measureFleet(reuse, opt, cluster.Config{
			Policy:    pol,
			P99Target: DefaultClusterP99Target,
			Topology:  cluster.Flat(n),
		}, specFn),
	}
}

// wattsPerKQPS is the fleet efficiency metric the cluster reports
// print: watts burned per thousand served requests per second. Both
// factors cover the same interval — the measured window including its
// drain tail — so warmup traffic neither inflates the rate nor dilutes
// the watts.
func wattsPerKQPS(m cluster.Measurement) float64 {
	if m.ServedWindow == 0 || m.Window <= 0 {
		return 0
	}
	qps := float64(m.ServedWindow) / m.Window.Seconds()
	return m.TotalWatts / (qps / 1000)
}

// ClusterScalingResult is the cluster-scaling artifact.
type ClusterScalingResult struct {
	AggregateQPS float64        `json:"aggregate_qps"`
	Duration     sim.Duration   `json:"duration_ns"`
	Points       []ClusterPoint `json:"points"`
}

// ClusterScaling evaluates round_robin and power_aware fleets of each
// size under one fixed aggregate Memcached rate. Each (size, policy)
// point is an independent fleet on its own engine, so points fan out
// through the §2 worker pool like any other sweep.
func ClusterScaling(opt Options, sizes []int) (*ClusterScalingResult, error) {
	if len(sizes) == 0 {
		return nil, fmt.Errorf("cluster-scaling: no fleet sizes")
	}
	for _, n := range sizes {
		if n < 1 {
			return nil, fmt.Errorf("cluster-scaling: fleet size %d is below 1", n)
		}
	}
	specFn := func() workload.Spec { return workload.Memcached(DefaultClusterAggregateQPS) }
	type pt struct {
		n   int
		pol cluster.Policy
	}
	var pts []pt
	for _, n := range sizes {
		for _, pol := range []cluster.Policy{cluster.RoundRobin, cluster.PowerAware} {
			pts = append(pts, pt{n: n, pol: pol})
		}
	}
	res := &ClusterScalingResult{AggregateQPS: specFn().MeanQPS(), Duration: opt.Duration}
	res.Points = SweepWith(opt, pts, newReuse, func(reuse *cluster.Reuse, p pt) ClusterPoint {
		return runFleet(reuse, opt, p.n, p.pol, specFn)
	})
	return res, nil
}

// Report implements Result.
func (r *ClusterScalingResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cluster scaling: %.0f aggregate QPS Memcached on C_PC1A fleets\n", r.AggregateQPS)
	b.WriteString("(fixed fleet-wide load; more servers = lighter per-server load)\n")
	t := &table{header: []string{"servers", "policy", "p50", "p99", "p99.9", "fleet W", "W/kQPS", "PC1A res", "dropped"}}
	for _, p := range r.Points {
		pc1a := "-"
		if p.Fleet.PC1AResidency != nil {
			pc1a = pct(*p.Fleet.PC1AResidency)
		}
		t.add(
			fmt.Sprintf("%d", p.Servers),
			p.Policy,
			fmt.Sprintf("%.1fus", p.Fleet.P50Latency*1e6),
			fmt.Sprintf("%.1fus", p.Fleet.P99Latency*1e6),
			fmt.Sprintf("%.1fus", p.Fleet.P999Latency*1e6),
			fmt.Sprintf("%.1fW", p.Fleet.TotalWatts),
			fmt.Sprintf("%.2f", wattsPerKQPS(p.Fleet)),
			pc1a,
			fmt.Sprintf("%d", p.Fleet.Dropped),
		)
	}
	b.WriteString(t.String())
	return b.String()
}

// WriteCSV implements CSVWriter.
func (r *ClusterScalingResult) WriteCSV(w io.Writer) error {
	return writeClusterCSV(w, r.Points)
}

// ClusterPolicyResult is the cluster-policy artifact.
type ClusterPolicyResult struct {
	Servers      int            `json:"servers"`
	AggregateQPS float64        `json:"aggregate_qps"`
	Burstiness   float64        `json:"burstiness"`
	Duration     sim.Duration   `json:"duration_ns"`
	Points       []ClusterPoint `json:"points"`
}

// ClusterPolicy duels the routing policies on one bursty Memcached fleet
// of DefaultClusterPolicyServers machines.
func ClusterPolicy(opt Options, policies []cluster.Policy) (*ClusterPolicyResult, error) {
	if len(policies) == 0 {
		return nil, fmt.Errorf("cluster-policy: no policies")
	}
	specFn := func() workload.Spec {
		return workload.MemcachedBursty(DefaultClusterPolicyQPS, DefaultClusterPolicyBurstiness)
	}
	res := &ClusterPolicyResult{
		Servers:      DefaultClusterPolicyServers,
		AggregateQPS: specFn().MeanQPS(),
		Burstiness:   DefaultClusterPolicyBurstiness,
		Duration:     opt.Duration,
	}
	res.Points = SweepWith(opt, policies, newReuse, func(reuse *cluster.Reuse, pol cluster.Policy) ClusterPoint {
		return runFleet(reuse, opt, DefaultClusterPolicyServers, pol, specFn)
	})
	return res, nil
}

// Report implements Result.
func (r *ClusterPolicyResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cluster policy duel: %d servers, bursty Memcached at %.0f aggregate QPS\n",
		r.Servers, r.AggregateQPS)
	t := &table{header: []string{"policy", "p50", "p99", "p99.9", "fleet W", "W/kQPS", "busiest srv", "idlest srv", "PC1A res", "dropped"}}
	for _, p := range r.Points {
		pc1a := "-"
		if p.Fleet.PC1AResidency != nil {
			pc1a = pct(*p.Fleet.PC1AResidency)
		}
		// The per-server routed spread is the visible difference between
		// spreading and packing policies.
		minR, maxR := p.Fleet.Servers[0].Routed, p.Fleet.Servers[0].Routed
		for _, ss := range p.Fleet.Servers[1:] {
			if ss.Routed < minR {
				minR = ss.Routed
			}
			if ss.Routed > maxR {
				maxR = ss.Routed
			}
		}
		t.add(
			p.Policy,
			fmt.Sprintf("%.1fus", p.Fleet.P50Latency*1e6),
			fmt.Sprintf("%.1fus", p.Fleet.P99Latency*1e6),
			fmt.Sprintf("%.1fus", p.Fleet.P999Latency*1e6),
			fmt.Sprintf("%.1fW", p.Fleet.TotalWatts),
			fmt.Sprintf("%.2f", wattsPerKQPS(p.Fleet)),
			fmt.Sprintf("%d req", maxR),
			fmt.Sprintf("%d req", minR),
			pc1a,
			fmt.Sprintf("%d", p.Fleet.Dropped),
		)
	}
	b.WriteString(t.String())
	return b.String()
}

// WriteCSV implements CSVWriter.
func (r *ClusterPolicyResult) WriteCSV(w io.Writer) error {
	return writeClusterCSV(w, r.Points)
}

// pc1aCell renders a PC1A residency for the CSV writers: empty on
// configurations without an APMU.
func pc1aCell(res *float64) string {
	if res == nil {
		return ""
	}
	return fmt.Sprintf("%g", *res)
}

// writeClusterCSV emits the shared fleet series: one aggregate row per
// point followed by its per-server rows (server >= 0), so one file holds
// both granularities.
func writeClusterCSV(w io.Writer, points []ClusterPoint) error {
	if _, err := fmt.Fprintln(w, "servers,policy,server,routed,served,dropped,mean_s,p50_s,p99_s,p999_s,soc_w,dram_w,total_w,w_per_kqps,all_idle,pc1a_residency"); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w, "%d,%s,,%d,%d,%d,%g,%g,%g,%g,%g,%g,%g,%g,%g,%s\n",
			p.Servers, p.Policy, p.Fleet.Generated, p.Fleet.Served, p.Fleet.Dropped,
			p.Fleet.MeanLatency, p.Fleet.P50Latency, p.Fleet.P99Latency, p.Fleet.P999Latency,
			p.Fleet.SoCWatts, p.Fleet.DRAMWatts, p.Fleet.TotalWatts, wattsPerKQPS(p.Fleet),
			p.Fleet.AllIdle, pc1aCell(p.Fleet.PC1AResidency)); err != nil {
			return err
		}
		for _, ss := range p.Fleet.Servers {
			if _, err := fmt.Fprintf(w, "%d,%s,%d,%d,%d,%d,%g,,%g,,%g,%g,%g,,%g,%s\n",
				p.Servers, p.Policy, ss.Index, ss.Routed, ss.Served, ss.Dropped,
				ss.MeanLatency, ss.P99Latency,
				ss.SoCWatts, ss.DRAMWatts, ss.TotalWatts,
				ss.AllIdle, pc1aCell(ss.PC1AResidency)); err != nil {
				return err
			}
		}
	}
	return nil
}
