package experiments

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden report file")

// TestGoldenReports locks the rendered report of every registered
// experiment at QuickOptions against a committed golden file. It guards
// refactors of the experiment stack (this PR's and future ones): any
// change to the simulation, the registry or the report rendering that
// moves a single byte fails here. Regenerate deliberately with
//
//	go test ./internal/experiments/ -run TestGoldenReports -update
func TestGoldenReports(t *testing.T) {
	var b strings.Builder
	for _, e := range All() {
		res, err := e.Run(QuickOptions())
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		fmt.Fprintf(&b, "==== %s ====\n%s\n", e.Name(), res.Report())
	}
	got := []byte(b.String())

	path := filepath.Join("testdata", "golden_quick.txt")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if bytes.Equal(got, want) {
		return
	}
	// Drop the full rendering next to the golden so CI can upload it as
	// an artifact: a lock failure then ships the would-be golden for
	// local benchstat-style diffing, not just the first divergent line.
	gotPath := filepath.Join("testdata", "golden_quick.got.txt")
	if err := os.WriteFile(gotPath, got, 0o644); err != nil {
		t.Logf("could not write %s: %v", gotPath, err)
	} else {
		t.Logf("full divergent report written to %s", gotPath)
	}
	gotLines, wantLines := strings.Split(string(got), "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		var g, w string
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Fatalf("report diverges from golden at line %d:\n got: %q\nwant: %q", i+1, g, w)
		}
	}
	t.Fatal("report differs from golden (length only)")
}

// TestGoldenResultsMarshalJSON enforces the Result contract's mandatory
// JSON marshalling: every registered experiment's result must encode to
// a non-trivial JSON object.
func TestGoldenResultsMarshalJSON(t *testing.T) {
	opt := QuickOptions()
	opt.Duration /= 10 // marshalling does not need a stable window
	for _, e := range All() {
		res, err := e.Run(opt)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		data, err := json.Marshal(res)
		if err != nil {
			t.Errorf("%s: result does not marshal: %v", e.Name(), err)
			continue
		}
		if len(data) < 10 || data[0] != '{' {
			t.Errorf("%s: implausible JSON result %q", e.Name(), data)
		}
		var back map[string]any
		if err := json.Unmarshal(data, &back); err != nil {
			t.Errorf("%s: result JSON does not round-trip: %v", e.Name(), err)
		}
	}
}
