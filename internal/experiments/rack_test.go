package experiments

import (
	"errors"
	"strings"
	"testing"

	"agilepkgc/internal/cluster"
)

func TestRackPackingShape(t *testing.T) {
	opt := QuickOptions()
	opt.Duration /= 2
	res, err := RackPacking(opt, DefaultRackTopologies)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(DefaultRackTopologies)*len(DefaultRackPolicies) {
		t.Fatalf("want %d points, got %d", len(DefaultRackTopologies)*len(DefaultRackPolicies), len(res.Points))
	}
	for i, p := range res.Points {
		topo := DefaultRackTopologies[i/len(DefaultRackPolicies)]
		if p.Topology != topo.String() || p.Racks != topo.Racks {
			t.Errorf("point %d: topology %s, want %s", i, p.Topology, topo)
		}
		if want := topo.Servers(); len(p.Fleet.Servers) != want {
			t.Errorf("point %d: %d per-server stats, want %d", i, len(p.Fleet.Servers), want)
		}
		if topo.IsFlat() {
			if len(p.Fleet.Racks) != 0 {
				t.Errorf("point %d: flat shape grew %d rack zones", i, len(p.Fleet.Racks))
			}
		} else if len(p.Fleet.Racks) != topo.Racks {
			t.Errorf("point %d: %d rack zones, want %d", i, len(p.Fleet.Racks), topo.Racks)
		}
	}
	// The duel's reason to exist: on a racked shape, rack_affinity must
	// hold tail latency below the flat packer, which queues bursts
	// rack-deep on the local rack.
	aff, pa := res.Points[0], res.Points[1]
	if aff.Policy != cluster.RackAffinity.String() || pa.Policy != cluster.PowerAware.String() {
		t.Fatalf("unexpected point order: %q %q", aff.Policy, pa.Policy)
	}
	if aff.Fleet.P99Latency >= pa.Fleet.P99Latency {
		t.Errorf("rack_affinity p99 %.1fus not below power_aware's %.1fus",
			aff.Fleet.P99Latency*1e6, pa.Fleet.P99Latency*1e6)
	}

	if _, err := RackPacking(opt, nil); err == nil {
		t.Error("empty topology list accepted")
	}
	if _, err := RackPacking(opt, []cluster.Topology{{Racks: 0, ServersPerRack: 2}}); err == nil {
		t.Error("non-positive topology accepted")
	}
}

func TestRackPackingSerialParallelBitIdentical(t *testing.T) {
	opt := QuickOptions()
	opt.Duration /= 2
	serial, parallel := opt, opt
	serial.Parallelism = 1
	parallel.Parallelism = 8
	sr, err := RackPacking(serial, DefaultRackTopologies[:2])
	if err != nil {
		t.Fatal(err)
	}
	pr, err := RackPacking(parallel, DefaultRackTopologies[:2])
	if err != nil {
		t.Fatal(err)
	}
	if sr.Report() != pr.Report() {
		t.Error("rack-packing depends on parallelism")
	}
}

// TestRackPackingCSVPropagatesWriterErrors fails the writer at every
// prefix of the rack CSV (header, aggregate rows, per-rack zone rows).
func TestRackPackingCSVPropagatesWriterErrors(t *testing.T) {
	opt := QuickOptions()
	opt.Duration /= 10
	res, err := RackPacking(opt, []cluster.Topology{{Racks: 2, ServersPerRack: 2}})
	if err != nil {
		t.Fatal(err)
	}
	var ok strings.Builder
	if err := res.WriteCSV(&ok); err != nil {
		t.Fatal(err)
	}
	cw := &writeCounter{}
	if err := res.WriteCSV(cw); err != nil {
		t.Fatal(err)
	}
	if want := 1 + 2*(1+2); cw.writes < want { // header + 2 points × (aggregate + 2 racks)
		t.Fatalf("expected at least %d writes, got %d", want, cw.writes)
	}
	sentinel := errors.New("disk full")
	for n := 0; n < cw.writes; n++ {
		if err := res.WriteCSV(&failAfter{n: n, err: sentinel}); !errors.Is(err, sentinel) {
			t.Errorf("failure after %d writes was swallowed: got %v", n, err)
		}
	}
}
