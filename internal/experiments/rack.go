package experiments

// rack-packing asks the ROADMAP's post-cluster question: once a fleet
// has rack structure — a top-of-rack hop into every non-local rack and
// per-rack power zones — does rack-granular packing deepen PC1A further
// than flat packing? The experiment holds the aggregate Memcached rate
// fixed and reshapes the same 8 servers (2 racks × 4, 4 racks × 2, flat
// 8), dueling rack_affinity against flat power_aware on each shape; the
// per-rack zone tables show whether whole racks go dark.

import (
	"fmt"
	"io"
	"strings"

	"agilepkgc/internal/cluster"
	"agilepkgc/internal/server"
	"agilepkgc/internal/sim"
	"agilepkgc/internal/soc"
	"agilepkgc/internal/workload"
)

// Defaults for the rack-packing experiment, exported so callers can
// rerun the registered artifact programmatically with explicit shapes.
var (
	// DefaultRackTopologies are the shapes the same 8 servers are bent
	// into: two racks of four, four racks of two, and the flat baseline.
	DefaultRackTopologies = []cluster.Topology{
		{Racks: 2, ServersPerRack: 4},
		{Racks: 4, ServersPerRack: 2},
		{Racks: 1, ServersPerRack: 8},
	}
	// DefaultRackPolicies duels rack-granular packing against the flat
	// packer on every shape.
	DefaultRackPolicies = []cluster.Policy{cluster.RackAffinity, cluster.PowerAware}
)

// Fixed operating point of the rack-packing duel.
const (
	// DefaultRackTorLatency is the one-way top-of-rack hop charged per
	// direction on traffic into a non-local rack (a switch traversal, a
	// few µs at datacenter scale).
	DefaultRackTorLatency = 5 * sim.Microsecond
	// DefaultRackAggregateQPS and DefaultRackBurstiness fix the bursty
	// aggregate Memcached stream: the mean fits comfortably inside one
	// rack, but bursts overflow a single rack's natural capacity, so the
	// shapes and policies actually diverge — rack_affinity wakes the
	// next rack, the flat packer queues deeper on the local one.
	DefaultRackAggregateQPS = 600000.0
	DefaultRackBurstiness   = 8.0
)

func init() {
	Define(170, "rack-packing",
		"rack_affinity vs power_aware across rack shapes at fixed aggregate QPS",
		func(o Options) (Result, error) { return RackPacking(o, DefaultRackTopologies) })
}

// measureFleet builds and measures one fleet of default CPC1A machines:
// cfg carries everything but the members, which are filled in from the
// topology (Flat(n) for unracked fleets). specFn builds the workload per
// call: arrival processes (MMPP2) carry mutable phase state, so
// concurrently-running fleets must never share one spec value. reuse is
// the calling sweep worker's fleet cache — consecutive points with the
// same topology shape reset one fleet instead of building a new one.
// newReuse builds one fleet cache per sweep worker (SweepWith's newS).
func newReuse() *cluster.Reuse { return new(cluster.Reuse) }

func measureFleet(reuse *cluster.Reuse, opt Options, cfg cluster.Config, specFn func() workload.Spec) cluster.Measurement {
	members := make([]cluster.MemberConfig, cfg.Topology.Servers())
	for i := range members {
		scfg := server.DefaultConfig()
		scfg.Seed = opt.Seed
		members[i] = cluster.MemberConfig{SoC: soc.DefaultConfig(soc.CPC1A), Server: scfg}
	}
	cfg.Members = members
	fl, err := reuse.Fleet(cfg, specFn(), opt.Seed)
	if err != nil {
		// All inputs are compile-time constants; an error is a bug.
		panic(err)
	}
	return fl.Measure(opt.Warmup(), opt.Duration)
}

// RackPoint is one measured (topology, policy) operating point.
type RackPoint struct {
	// Topology is the rack shape ("2x4"); Racks and ServersPerRack are
	// its factors for machine consumers.
	Topology       string              `json:"topology"`
	Racks          int                 `json:"racks"`
	ServersPerRack int                 `json:"servers_per_rack"`
	Policy         string              `json:"policy"`
	Fleet          cluster.Measurement `json:"fleet"`
}

// racksUsed counts racks the balancer actually routed into (1 for flat
// fleets, whose single zone always carries the traffic).
func (p RackPoint) racksUsed() int {
	if len(p.Fleet.Racks) == 0 {
		return 1
	}
	n := 0
	for _, rs := range p.Fleet.Racks {
		if rs.Routed > 0 {
			n++
		}
	}
	return n
}

// RackPackingResult is the rack-packing artifact.
type RackPackingResult struct {
	AggregateQPS float64      `json:"aggregate_qps"`
	TorLatency   sim.Duration `json:"tor_latency_ns"`
	Duration     sim.Duration `json:"duration_ns"`
	Points       []RackPoint  `json:"points"`
}

// RackPacking evaluates every (topology, policy) pair under one fixed
// aggregate Memcached rate. Each pair is an independent fleet on its own
// engine, so points fan out through the §2 worker pool like any other
// sweep.
func RackPacking(opt Options, topos []cluster.Topology) (*RackPackingResult, error) {
	if len(topos) == 0 {
		return nil, fmt.Errorf("rack-packing: no topologies")
	}
	for _, topo := range topos {
		if topo.Racks < 1 || topo.ServersPerRack < 1 {
			return nil, fmt.Errorf("rack-packing: topology %s is not positive", topo)
		}
	}
	specFn := func() workload.Spec {
		return workload.MemcachedBursty(DefaultRackAggregateQPS, DefaultRackBurstiness)
	}
	type pt struct {
		topo cluster.Topology
		pol  cluster.Policy
	}
	var pts []pt
	for _, topo := range topos {
		for _, pol := range DefaultRackPolicies {
			pts = append(pts, pt{topo: topo, pol: pol})
		}
	}
	res := &RackPackingResult{
		AggregateQPS: specFn().MeanQPS(),
		TorLatency:   DefaultRackTorLatency,
		Duration:     opt.Duration,
	}
	res.Points = SweepWith(opt, pts, newReuse, func(reuse *cluster.Reuse, p pt) RackPoint {
		return RackPoint{
			Topology:       p.topo.String(),
			Racks:          p.topo.Racks,
			ServersPerRack: p.topo.ServersPerRack,
			Policy:         p.pol.String(),
			Fleet: measureFleet(reuse, opt, cluster.Config{
				Policy:     p.pol,
				P99Target:  DefaultClusterP99Target,
				Topology:   p.topo,
				TorLatency: DefaultRackTorLatency,
			}, specFn),
		}
	})
	return res, nil
}

// Report implements Result.
func (r *RackPackingResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Rack packing: bursty %.0f aggregate QPS Memcached, %v ToR hop, same 8 servers reshaped\n",
		r.AggregateQPS, r.TorLatency)
	b.WriteString("(rack 0 is balancer-local; rack-granular packing vs the flat packer)\n")
	t := &table{header: []string{"topology", "policy", "p50", "p99", "p99.9", "fleet W", "W/kQPS", "racks used", "PC1A res", "dropped"}}
	for _, p := range r.Points {
		pc1a := "-"
		if p.Fleet.PC1AResidency != nil {
			pc1a = pct(*p.Fleet.PC1AResidency)
		}
		t.add(
			p.Topology,
			p.Policy,
			fmt.Sprintf("%.1fus", p.Fleet.P50Latency*1e6),
			fmt.Sprintf("%.1fus", p.Fleet.P99Latency*1e6),
			fmt.Sprintf("%.1fus", p.Fleet.P999Latency*1e6),
			fmt.Sprintf("%.1fW", p.Fleet.TotalWatts),
			fmt.Sprintf("%.2f", wattsPerKQPS(p.Fleet)),
			fmt.Sprintf("%d/%d", p.racksUsed(), p.Racks),
			pc1a,
			fmt.Sprintf("%d", p.Fleet.Dropped),
		)
	}
	b.WriteString(t.String())

	// Rack-zone breakdowns: whether the dark racks actually went dark.
	for _, p := range r.Points {
		if len(p.Fleet.Racks) == 0 {
			continue
		}
		fmt.Fprintf(&b, "\nrack zones [%s %s]:\n", p.Topology, p.Policy)
		zt := &table{header: []string{"rack", "active", "routed", "zone W", "all-idle", "PC1A res"}}
		for _, rs := range p.Fleet.Racks {
			local := ""
			if rs.Local {
				local = "*"
			}
			pc1a := "-"
			if rs.PC1AResidency != nil {
				pc1a = pct(*rs.PC1AResidency)
			}
			zt.add(
				fmt.Sprintf("%d%s", rs.Index, local),
				fmt.Sprintf("%d/%d", rs.ActiveServers, rs.Servers),
				fmt.Sprintf("%d", rs.Routed),
				fmt.Sprintf("%.1fW", rs.TotalWatts),
				pct(rs.AllIdle),
				pc1a,
			)
		}
		b.WriteString(zt.String())
	}
	return b.String()
}

// WriteCSV implements CSVWriter: one aggregate row per point (rack cell
// empty) followed by its per-rack zone rows, so one file holds both
// granularities like the other cluster CSVs.
func (r *RackPackingResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "topology,racks,servers_per_rack,policy,rack,local,active_servers,routed,served,dropped,mean_s,p99_s,soc_w,dram_w,total_w,all_idle,pc1a_residency"); err != nil {
		return err
	}
	for _, p := range r.Points {
		if _, err := fmt.Fprintf(w, "%s,%d,%d,%s,,,,%d,%d,%d,%g,%g,%g,%g,%g,%g,%s\n",
			p.Topology, p.Racks, p.ServersPerRack, p.Policy,
			p.Fleet.Generated, p.Fleet.Served, p.Fleet.Dropped,
			p.Fleet.MeanLatency, p.Fleet.P99Latency,
			p.Fleet.SoCWatts, p.Fleet.DRAMWatts, p.Fleet.TotalWatts,
			p.Fleet.AllIdle, pc1aCell(p.Fleet.PC1AResidency)); err != nil {
			return err
		}
		for _, rs := range p.Fleet.Racks {
			if _, err := fmt.Fprintf(w, "%s,%d,%d,%s,%d,%t,%d,%d,%d,%d,%g,%g,%g,%g,%g,%g,%s\n",
				p.Topology, p.Racks, p.ServersPerRack, p.Policy,
				rs.Index, rs.Local, rs.ActiveServers,
				rs.Routed, rs.Served, rs.Dropped,
				rs.MeanLatency, rs.P99Latency,
				rs.SoCWatts, rs.DRAMWatts, rs.TotalWatts,
				rs.AllIdle, pc1aCell(rs.PC1AResidency)); err != nil {
				return err
			}
		}
	}
	return nil
}
