package experiments

// fault-resilience stresses the routing policies the previous cluster
// experiments tuned for power: when servers start crashing, does the
// packed fleet break or bend? The experiment sweeps crash MTBF from
// "never" down to one failure per 5 ms of virtual time on one bursty
// racked fleet, for round_robin (load spread wide, every crash loses a
// thin slice), power_aware and rack_power_aware (load packed tight,
// every crash of a frontier server loses a thick one). All points run
// with the same robustness envelope — bounded-retry timeouts and one
// hedged copy — so the sweep isolates the injection rate. The
// acceptance signal is the goodput and failure columns: retries and
// hedging must hold OK near Generated while crashes climb, and the
// conservation invariant OK + Failed + Shed = Generated holds on every
// row (DESIGN.md §8).

import (
	"fmt"
	"io"
	"strings"

	"agilepkgc/internal/cluster"
	"agilepkgc/internal/sim"
	"agilepkgc/internal/workload"
)

// Defaults for the fault-resilience experiment, exported so callers can
// rerun the registered artifact programmatically with explicit rates.
var (
	// DefaultFaultMTBFs is the swept crash rate: a no-fault baseline,
	// then three escalating failure rates. At 100 ms windows even the
	// gentlest rate crashes each server about twice.
	DefaultFaultMTBFs = []sim.Duration{
		0, 50 * sim.Millisecond, 20 * sim.Millisecond, 5 * sim.Millisecond,
	}
	// DefaultFaultPolicies duels the spread baseline against both
	// cap-based packers.
	DefaultFaultPolicies = []cluster.Policy{
		cluster.RoundRobin, cluster.PowerAware, cluster.RackPowerAware,
	}
	// DefaultFaultTopology matches the drain-hysteresis fleet: two
	// racks of four, so the packers have a remote zone to pack away
	// from and crashes can hit the packed frontier.
	DefaultFaultTopology = cluster.Topology{Racks: 2, ServersPerRack: 4}
)

// Fixed operating point and robustness envelope of the sweep.
const (
	// DefaultFaultAggregateQPS and DefaultFaultBurstiness reuse the
	// drain-hysteresis stream: bursty enough that a crash lands on a
	// loaded server, light enough that the survivors can absorb the
	// retried work.
	DefaultFaultAggregateQPS = DefaultDrainAggregateQPS
	DefaultFaultBurstiness   = DefaultDrainBurstiness
	// DefaultFaultTorLatency and DefaultFaultP99Target match the other
	// cluster experiments.
	DefaultFaultTorLatency = DefaultRackTorLatency
	DefaultFaultP99Target  = DefaultClusterP99Target
	// DefaultFaultMTTR is the mean repair time: long enough that a
	// crash visibly dents the fleet, short enough that every point
	// measures several full fail/repair cycles.
	DefaultFaultMTTR = 2 * sim.Millisecond
	// DefaultFaultTimeout and DefaultFaultRetries bound how long a
	// request chases a dead server: the timeout sits well above the
	// healthy p99, so it only fires on genuine loss.
	DefaultFaultTimeout = 2 * sim.Millisecond
	DefaultFaultRetries = 2
	// DefaultFaultHedgeDelay arms the hedged copy an order of
	// magnitude above the healthy p50 — cheap insurance that only pays
	// when the first copy is stuck on a dying machine.
	DefaultFaultHedgeDelay = 500 * sim.Microsecond
)

func init() {
	Define(190, "fault-resilience",
		"crash MTBF sweep under retries+hedging: round_robin vs power_aware vs rack_power_aware",
		func(o Options) (Result, error) { return FaultResilience(o, DefaultFaultMTBFs) })
}

// FaultPoint is one measured (policy, MTBF) operating point.
type FaultPoint struct {
	Policy string `json:"policy"`
	// MTBFUS is the per-server mean time between crashes in
	// microseconds (0 = no injection; the baseline still runs with the
	// timeout/retry/hedge envelope attached).
	MTBFUS float64             `json:"mtbf_us"`
	Fleet  cluster.Measurement `json:"fleet"`
}

// FaultResilienceResult is the fault-resilience artifact.
type FaultResilienceResult struct {
	AggregateQPS float64      `json:"aggregate_qps"`
	Burstiness   float64      `json:"burstiness"`
	Topology     string       `json:"topology"`
	P99Target    sim.Duration `json:"p99_target_ns"`
	MTTR         sim.Duration `json:"mttr_ns"`
	Timeout      sim.Duration `json:"request_timeout_ns"`
	MaxRetries   int          `json:"max_retries"`
	HedgeDelay   sim.Duration `json:"hedge_delay_ns"`
	Duration     sim.Duration `json:"duration_ns"`
	Points       []FaultPoint `json:"points"`
}

// FaultResilience evaluates every policy at every crash MTBF under one
// fixed bursty aggregate Memcached rate and one fixed robustness
// envelope. Each (policy, MTBF) pair is an independent fleet on its own
// engine, so points fan out through the §2 worker pool like any other
// sweep.
func FaultResilience(opt Options, mtbfs []sim.Duration) (*FaultResilienceResult, error) {
	if len(mtbfs) == 0 {
		return nil, fmt.Errorf("fault-resilience: no MTBF values")
	}
	for _, m := range mtbfs {
		if m < 0 {
			return nil, fmt.Errorf("fault-resilience: negative MTBF %v", m)
		}
	}
	specFn := func() workload.Spec {
		return workload.MemcachedBursty(DefaultFaultAggregateQPS, DefaultFaultBurstiness)
	}
	type pt struct {
		pol  cluster.Policy
		mtbf sim.Duration
	}
	var pts []pt
	for _, pol := range DefaultFaultPolicies {
		for _, m := range mtbfs {
			pts = append(pts, pt{pol: pol, mtbf: m})
		}
	}
	res := &FaultResilienceResult{
		AggregateQPS: specFn().MeanQPS(),
		Burstiness:   DefaultFaultBurstiness,
		Topology:     DefaultFaultTopology.String(),
		P99Target:    DefaultFaultP99Target,
		MTTR:         DefaultFaultMTTR,
		Timeout:      DefaultFaultTimeout,
		MaxRetries:   DefaultFaultRetries,
		HedgeDelay:   DefaultFaultHedgeDelay,
		Duration:     opt.Duration,
	}
	res.Points = SweepWith(opt, pts, newReuse, func(reuse *cluster.Reuse, p pt) FaultPoint {
		return FaultPoint{
			Policy: p.pol.String(),
			MTBFUS: p.mtbf.Seconds() * 1e6,
			Fleet: measureFleet(reuse, opt, cluster.Config{
				Policy:     p.pol,
				P99Target:  DefaultFaultP99Target,
				Topology:   DefaultFaultTopology,
				TorLatency: DefaultFaultTorLatency,
				Faults: cluster.FaultConfig{
					MTBF:           p.mtbf,
					MTTR:           DefaultFaultMTTR,
					RequestTimeout: DefaultFaultTimeout,
					MaxRetries:     DefaultFaultRetries,
					HedgeDelay:     DefaultFaultHedgeDelay,
				},
			}, specFn),
		}
	})
	return res, nil
}

// mtbfCell renders the swept rate ("-" for the no-injection baseline).
func mtbfCell(us float64) string {
	if us == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0fus", us)
}

// Report implements Result.
func (r *FaultResilienceResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fault resilience: bursty %.0f aggregate QPS Memcached on a %s fleet, crash MTTR %v\n",
		r.AggregateQPS, r.Topology, r.MTTR)
	fmt.Fprintf(&b, "(timeout %v, %d retries, hedge after %v; OK + failed + shed = generated on every row)\n",
		r.Timeout, r.MaxRetries, r.HedgeDelay)
	t := &table{header: []string{"policy", "mtbf", "goodput", "p99", "ok", "failed", "retried", "hedged", "shed", "crashes", "rec p99", "fleet W"}}
	for _, p := range r.Points {
		rec := "-"
		if p.Fleet.RecoveryP99 > 0 {
			rec = fmt.Sprintf("%.1fus", p.Fleet.RecoveryP99*1e6)
		}
		t.add(
			p.Policy,
			mtbfCell(p.MTBFUS),
			fmt.Sprintf("%.0f", p.Fleet.GoodputQPS),
			fmt.Sprintf("%.1fus", p.Fleet.P99Latency*1e6),
			fmt.Sprintf("%d", p.Fleet.OK),
			fmt.Sprintf("%d", p.Fleet.Failed),
			fmt.Sprintf("%d", p.Fleet.Retried),
			fmt.Sprintf("%d", p.Fleet.Hedged),
			fmt.Sprintf("%d", p.Fleet.Shed),
			fmt.Sprintf("%d", p.Fleet.Crashes),
			rec,
			fmt.Sprintf("%.1fW", p.Fleet.TotalWatts),
		)
	}
	b.WriteString(t.String())

	// Per-server tables for the stormiest MTBF only: where the crashes
	// landed and who absorbed the retried work is a per-server story,
	// but one table per point would drown the sweep.
	worst := r.Points
	if len(r.Points) > 0 {
		maxM := 0.0
		for _, p := range r.Points {
			if p.MTBFUS > maxM {
				maxM = p.MTBFUS
			}
		}
		if maxM > 0 {
			worst = worst[:0:0]
			for _, p := range r.Points {
				if p.MTBFUS == maxM {
					worst = append(worst, p)
				}
			}
		} else {
			worst = nil
		}
	}
	for _, p := range worst {
		fmt.Fprintf(&b, "\nper-server [%s mtbf=%s]:\n", p.Policy, mtbfCell(p.MTBFUS))
		st := &table{header: []string{"server", "rack", "routed", "ok", "failed", "crashes", "p99", "total"}}
		for _, ss := range p.Fleet.Servers {
			st.add(
				fmt.Sprintf("%d", ss.Index),
				fmt.Sprintf("%d", ss.Rack),
				fmt.Sprintf("%d", ss.Routed),
				fmt.Sprintf("%d", ss.OK),
				fmt.Sprintf("%d", ss.Failed),
				fmt.Sprintf("%d", ss.Crashes),
				fmt.Sprintf("%.1fus", ss.P99Latency*1e6),
				fmt.Sprintf("%.1fW", ss.TotalWatts),
			)
		}
		b.WriteString(st.String())
	}
	return b.String()
}

// WriteCSV implements CSVWriter: one aggregate row per point (server
// cell empty) followed by its per-server rows, the same shape as the
// other cluster CSVs.
func (r *FaultResilienceResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "policy,mtbf_us,server,rack,generated,routed,ok,failed,retried,hedged,shed,crashes,goodput_qps,mean_s,p99_s,recovery_p99_s,total_w"); err != nil {
		return err
	}
	for _, p := range r.Points {
		if _, err := fmt.Fprintf(w, "%s,%g,,,%d,,%d,%d,%d,%d,%d,%d,%g,%g,%g,%g,%g\n",
			p.Policy, p.MTBFUS,
			p.Fleet.Generated, p.Fleet.OK, p.Fleet.Failed,
			p.Fleet.Retried, p.Fleet.Hedged, p.Fleet.Shed, p.Fleet.Crashes,
			p.Fleet.GoodputQPS, p.Fleet.MeanLatency, p.Fleet.P99Latency,
			p.Fleet.RecoveryP99, p.Fleet.TotalWatts); err != nil {
			return err
		}
		for _, ss := range p.Fleet.Servers {
			if _, err := fmt.Fprintf(w, "%s,%g,%d,%d,,%d,%d,%d,%d,%d,,%d,,%g,%g,,%g\n",
				p.Policy, p.MTBFUS, ss.Index, ss.Rack,
				ss.Routed, ss.OK, ss.Failed, ss.Retried, ss.Hedged, ss.Crashes,
				ss.MeanLatency, ss.P99Latency, ss.TotalWatts); err != nil {
				return err
			}
		}
	}
	return nil
}
