// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment is a pure function of its parameters that
// runs the simulator and returns a result struct with both programmatic
// fields (asserted by tests and benchmarks) and a formatted report that
// prints the same rows/series the paper shows, side by side with the
// paper's published numbers.
//
// # The registry contract
//
// Every artifact self-registers at init time, in the same file as the
// code that computes it, via Register or Define under an integer
// ordinal. Ordinals only fix the canonical order (`apcsim run all`,
// `apcsim list`, the golden-report file); gaps are fine and duplicates
// — of a name or an ordinal — panic at init. Nothing outside this
// package keeps a name list: the CLI, the docs and the tests all
// enumerate All()/Names(). Each Result must render a Report, marshal
// cleanly with encoding/json (the CLI's -json envelope), and may
// implement CSVWriter for its data series. Results are pure functions
// of Options: same Options, same bytes, at any Parallelism.
//
// Index (see DESIGN.md §3 for the full mapping):
//
//	Table1         — power and latency per package C-state
//	Table2         — state-availability matrix
//	Sec54          — component power deltas (Pcores, PIOs, Pdram, PPLLs)
//	Sec55          — PC1A vs PC6 transition latency
//	Eq1            — analytic power-savings model
//	Fig5           — Memcached latency, Cshallow vs Cdeep
//	Fig6           — PC1A opportunity (residencies, idle-period distribution)
//	Fig7           — PC1A power savings and performance impact
//	Fig8           — MySQL residency and power reduction
//	Fig9           — Kafka residency and power reduction
//	Area           — hardware cost model (Sec. 5.1–5.3)
//	Sensitivity    — technique ablations, PLL policy, APMU clock, FIVR slew
//	Batching       — epoch-aligned dispatch extension (Sec. 8)
//	Remote         — PC1A erosion under peer-socket UPI traffic
//	ClusterScaling  — fleet watts/latency vs size at fixed aggregate QPS
//	ClusterPolicy   — routing policies head-to-head on a bursty fleet
//	RackPacking     — rack_affinity vs power_aware across rack shapes
//	DrainHysteresis — hysteretic drain hold sweep on the cap policies
package experiments

import (
	"fmt"
	"strings"

	"agilepkgc/internal/cpu"
	"agilepkgc/internal/pmu"
	"agilepkgc/internal/power"
	"agilepkgc/internal/server"
	"agilepkgc/internal/sim"
	"agilepkgc/internal/soc"
	"agilepkgc/internal/trace"
	"agilepkgc/internal/workload"
)

// Options tune experiment run length; the defaults balance statistical
// stability against runtime. Tests use shorter windows.
type Options struct {
	// Duration is the measured window per operating point.
	Duration sim.Duration
	// Seed for all generators.
	Seed uint64
	// Parallelism caps how many sweep points run concurrently, each on
	// its own engine: 0 or 1 is serial, values above 1 bound the worker
	// pool, negative means one worker per available CPU. Results are
	// collected in point order and are bit-identical to a serial run
	// with the same seed at any setting.
	Parallelism int
}

// DefaultOptions returns the report-quality settings.
func DefaultOptions() Options {
	return Options{Duration: 2 * sim.Second, Seed: 1}
}

// QuickOptions returns fast settings for tests.
func QuickOptions() Options {
	return Options{Duration: 100 * sim.Millisecond, Seed: 1}
}

// loadedRun runs one (config, workload) point with a tracer attached and
// returns the bundle of observations every figure draws from.
type loadedRun struct {
	sys    *soc.System
	srv    *server.Server
	tracer *trace.Tracer

	avgSoCW   float64
	avgDRAMW  float64
	avgTotalW float64
}

// Warmup returns the settle window run before measurement starts so the
// measured window begins in steady state (menu governors seeded,
// frequency policies settled, queues primed): a tenth of the
// measurement window, capped at 50 ms. The scenario layer shares this
// formula — its bit-for-bit parity with runPoint depends on it.
func (o Options) Warmup() sim.Duration {
	warm := o.Duration / 10
	if warm > 50*sim.Millisecond {
		warm = 50 * sim.Millisecond
	}
	return warm
}

func runPoint(kind soc.ConfigKind, spec workload.Spec, opt Options) *loadedRun {
	sys := soc.New(soc.DefaultConfig(kind))
	scfg := server.DefaultConfig()
	scfg.Seed = opt.Seed
	srv := server.New(sys, scfg, spec)

	srv.Run(opt.Warmup())

	tr := trace.New(sys.Engine, sys.Cores)
	snap := sys.Meter.Snapshot()
	srv.Run(opt.Duration)
	tr.Finalize()

	return &loadedRun{
		sys:       sys,
		srv:       srv,
		tracer:    tr,
		avgSoCW:   snap.AveragePower(power.Package),
		avgDRAMW:  snap.AveragePower(power.DRAM),
		avgTotalW: snap.AverageTotal(),
	}
}

// newServerForConfig builds a server on an already-assembled system with
// the experiment's seed.
func newServerForConfig(sys *soc.System, opt Options, spec workload.Spec) *server.Server {
	scfg := server.DefaultConfig()
	scfg.Seed = opt.Seed
	return server.New(sys, scfg, spec)
}

// table builds a simple aligned text table.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string { return RenderTable(t.header, t.rows) }

// RenderTable formats an aligned text table in the house report style —
// the one renderer every experiment and scenario report shares.
func RenderTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

// pct formats a fraction as a percentage string.
func pct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }

// cpuBusyWork returns a long-running work item that keeps a core in CC0
// for the duration of a characterization measurement.
func cpuBusyWork() cpu.Work {
	return cpu.Work{Duration: 100 * sim.Millisecond}
}

// modelImpact computes the paper's performance model (Sec. 6): the
// number of PC1A transitions times the 200 ns transition cost, weighted
// by how many cores (≈ requests) each exit delays, spread across all
// served requests.
func modelImpact(run *loadedRun, baselineMeanLat float64) float64 {
	if run.sys.APMU == nil || run.srv.Served() == 0 || baselineMeanLat <= 0 {
		return 0
	}
	transitions := float64(run.sys.APMU.Entries(pmu.PC1A))
	affected := run.tracer.ActiveCoresAfterIdle().Mean()
	if affected < 1 {
		affected = 1
	}
	const transitionCost = 200e-9 // seconds
	added := transitions * transitionCost * affected
	return added / (float64(run.srv.Served()) * baselineMeanLat)
}
