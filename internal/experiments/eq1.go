package experiments

import (
	"fmt"
	"strings"

	"agilepkgc/internal/soc"
	"agilepkgc/internal/workload"
)

// Eq1Point is the analytic power-savings model (paper Eq. 1) evaluated
// at one load level with residencies measured from the Cshallow
// baseline.
type Eq1Point struct {
	Util        float64 // offered processor load
	QPS         float64
	RPC0        float64 // fraction of time ≥1 core active
	RPC0Idle    float64 // fraction of time all cores idle (R_PC1A)
	PPC0        float64 // average SoC+DRAM watts while not all-idle
	PPC0Idle    float64 // watts with all cores in CC1
	PPC1A       float64 // watts in PC1A
	Pbaseline   float64
	SavingsFrac float64
}

// Eq1Result holds the model at the paper's three operating points.
type Eq1Result struct {
	At5pct  Eq1Point
	At10pct Eq1Point
	Idle    Eq1Point
}

// Paper Sec. 2 values.
const (
	PaperEq1Savings5  = 0.23
	PaperEq1Savings10 = 0.17
	PaperEq1IdleSave  = 0.41
	PaperAllIdle5     = 0.57
	PaperAllIdle10    = 0.39
)

func init() {
	Define(50, "eq1", "analytic PC1A power-savings model (paper Eq. 1)",
		func(o Options) (Result, error) { return Eq1(o), nil })
}

// Eq1 measures residencies on the Cshallow baseline and plugs them into
// the paper's model together with the Table 1 state powers.
func Eq1(opt Options) *Eq1Result {
	// State powers, measured once.
	t1 := Table1(opt)
	pIdle := t1.PC0IdleSoC + t1.PC0IdleDRAM
	pPC1A := t1.PC1ASoC + t1.PC1ADRAM

	point := func(util float64) Eq1Point {
		spec := workload.MemcachedAtUtil(util, 10)
		run := runPoint(soc.Cshallow, spec, opt)
		rIdle := run.tracer.AllIdleFraction()
		rPC0 := 1 - rIdle
		pAvg := run.avgTotalW
		// Decompose the measured average into the two regimes:
		// pAvg = rPC0·P_PC0 + rIdle·P_idle.
		pPC0 := pAvg
		if rPC0 > 0.01 {
			pPC0 = (pAvg - rIdle*pIdle) / rPC0
		}
		pt := Eq1Point{
			Util:     util,
			QPS:      spec.MeanQPS(),
			RPC0:     rPC0,
			RPC0Idle: rIdle,
			PPC0:     pPC0,
			PPC0Idle: pIdle,
			PPC1A:    pPC1A,
		}
		pt.Pbaseline = pt.RPC0*pt.PPC0 + pt.RPC0Idle*pt.PPC0Idle
		pt.SavingsFrac = pt.RPC0Idle * (pt.PPC0Idle - pt.PPC1A) / pt.Pbaseline
		return pt
	}

	r := &Eq1Result{
		At5pct:  point(0.05),
		At10pct: point(0.10),
	}
	// Idle server: R_PC0 = 0, R_PC0idle = 1 → savings = 1 − P_PC1A/P_idle.
	r.Idle = Eq1Point{
		Util:        0,
		RPC0Idle:    1,
		PPC0Idle:    pIdle,
		PPC1A:       pPC1A,
		Pbaseline:   pIdle,
		SavingsFrac: 1 - pPC1A/pIdle,
	}
	return r
}

// Report implements Result.
func (r *Eq1Result) Report() string { return r.String() }

// String renders the model against the paper's Sec. 2 numbers.
func (r *Eq1Result) String() string {
	var b strings.Builder
	b.WriteString("Eq. 1: analytic PC1A power-savings model (residencies from Cshallow)\n")
	t := &table{header: []string{"Load", "QPS", "R_all-idle", "P_PC0", "P_idle", "P_PC1A", "Savings", "Paper"}}
	add := func(p Eq1Point, paperSave, paperIdle string) {
		t.add(pct(p.Util), fmt.Sprintf("%.0f", p.QPS), pct(p.RPC0Idle),
			fmt.Sprintf("%.1fW", p.PPC0), fmt.Sprintf("%.1fW", p.PPC0Idle),
			fmt.Sprintf("%.1fW", p.PPC1A), pct(p.SavingsFrac),
			fmt.Sprintf("save %s, idle %s", paperSave, paperIdle))
	}
	add(r.At5pct, "23%", "~57%")
	add(r.At10pct, "17%", "~39%")
	add(r.Idle, "41%", "100%")
	b.WriteString(t.String())
	return b.String()
}
