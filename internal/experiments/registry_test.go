package experiments

import (
	"reflect"
	"testing"
)

// TestRegistryCanonicalOrder pins the registered set and its canonical
// order — the order `apcsim run all` executes and DESIGN.md §3 lists.
func TestRegistryCanonicalOrder(t *testing.T) {
	want := []string{
		"table1", "table2", "sec54", "sec55", "eq1",
		"fig5", "fig6", "fig7", "fig8", "fig9",
		"area", "sensitivity", "batching", "remote",
		"cluster-scaling", "cluster-policy", "rack-packing",
		"drain-hysteresis", "fault-resilience", "trace-replay",
		"tiered-cache",
	}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("registry order = %v, want %v", got, want)
	}
	if len(All()) != len(want) {
		t.Fatalf("All() has %d entries, want %d", len(All()), len(want))
	}
}

func TestRegistryLookup(t *testing.T) {
	for _, e := range All() {
		got, ok := Lookup(e.Name())
		if !ok || got.Name() != e.Name() {
			t.Fatalf("Lookup(%q) = %v, %v", e.Name(), got, ok)
		}
		if got.Describe() == "" {
			t.Errorf("%s has no description", e.Name())
		}
	}
	if _, ok := Lookup("no-such-experiment"); ok {
		t.Fatal("Lookup invented an experiment")
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("duplicate name", func() {
		Define(9999, "table1", "dup", func(Options) (Result, error) { return nil, nil })
	})
	expectPanic("duplicate ordinal", func() {
		Define(10, "unique-name-1", "dup ordinal", func(Options) (Result, error) { return nil, nil })
	})
	expectPanic("empty name", func() {
		Define(9998, "", "anonymous", func(Options) (Result, error) { return nil, nil })
	})
}
