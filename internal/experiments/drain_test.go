package experiments

import (
	"errors"
	"strings"
	"testing"

	"agilepkgc/internal/sim"
)

// TestDrainHysteresisShape pins the artifact's structure and its
// physics: the hold-0 rows are the static baseline, every hold > 0 row
// reports drains on the members above the packing anchor, and at least
// one swept hold shows higher PC1A on the drained members at
// equal-or-better p99 than the static power_aware baseline — the
// acceptance criterion of the experiment.
func TestDrainHysteresisShape(t *testing.T) {
	opt := QuickOptions()
	res, err := DrainHysteresis(opt, DefaultDrainHolds)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(DefaultDrainPolicies) * len(DefaultDrainHolds); len(res.Points) != want {
		t.Fatalf("want %d points, got %d", want, len(res.Points))
	}
	var base *DrainPoint
	for i := range res.Points {
		p := &res.Points[i]
		if p.HoldUS == 0 {
			if p.Fleet.Drains != 0 {
				t.Errorf("%s hold 0 reports %d drains; baseline must be controller-free",
					p.Policy, p.Fleet.Drains)
			}
			if p.Policy == "power_aware" {
				base = p
			}
			continue
		}
		if p.Fleet.Drains == 0 {
			t.Errorf("%s hold %g drained nothing", p.Policy, p.HoldUS)
		}
		if p.Fleet.Servers[0].Drains != 0 {
			t.Errorf("%s hold %g drained server 0", p.Policy, p.HoldUS)
		}
	}
	if base == nil {
		t.Fatal("no static power_aware baseline point")
	}
	// The static frontier: the highest-indexed server the baseline
	// routed to, whose idle periods the flapping keeps short.
	frontier := -1
	for _, ss := range base.Fleet.Servers {
		if ss.Routed > 0 {
			frontier = ss.Index
		}
	}
	if frontier < 1 || base.Fleet.Servers[frontier].PC1AResidency == nil {
		t.Fatalf("degenerate baseline: frontier server %d", frontier)
	}
	won := false
	for _, p := range res.Points {
		if p.HoldUS == 0 {
			continue
		}
		mean, _, ok := p.drainedPC1A()
		if ok && p.Fleet.P99Latency <= base.Fleet.P99Latency &&
			mean > *base.Fleet.Servers[frontier].PC1AResidency {
			won = true
		}
	}
	if !won {
		t.Error("no swept hold achieved higher drained-member PC1A at equal-or-better p99 than the static baseline")
	}
}

// TestDrainHysteresisSerialParallelIdentical extends the §2 determinism
// contract to the controller experiment: the report must not depend on
// the parallelism setting, even with drain holds and live controllers
// in every point.
func TestDrainHysteresisSerialParallelIdentical(t *testing.T) {
	opt := QuickOptions()
	opt.Duration /= 5
	serial, parallel := opt, opt
	serial.Parallelism = 1
	parallel.Parallelism = 8
	sr, err := DrainHysteresis(serial, DefaultDrainHolds[:2])
	if err != nil {
		t.Fatal(err)
	}
	pr, err := DrainHysteresis(parallel, DefaultDrainHolds[:2])
	if err != nil {
		t.Fatal(err)
	}
	if sr.Report() != pr.Report() {
		t.Error("drain-hysteresis depends on parallelism")
	}
}

func TestDrainHysteresisRejectsBadHolds(t *testing.T) {
	if _, err := DrainHysteresis(QuickOptions(), nil); err == nil {
		t.Error("empty hold list accepted")
	}
	if _, err := DrainHysteresis(QuickOptions(), []sim.Duration{-sim.Microsecond}); err == nil {
		t.Error("negative hold accepted")
	}
}

// TestDrainHysteresisCSVPropagatesWriterErrors fails the writer at
// every prefix of the drain CSV (header, aggregate rows, per-server
// rows) — no failure point may produce a silent short file.
func TestDrainHysteresisCSVPropagatesWriterErrors(t *testing.T) {
	opt := QuickOptions()
	opt.Duration /= 10
	res, err := DrainHysteresis(opt, DefaultDrainHolds[:1])
	if err != nil {
		t.Fatal(err)
	}
	var ok strings.Builder
	if err := res.WriteCSV(&ok); err != nil {
		t.Fatal(err)
	}
	cw := &writeCounter{}
	if err := res.WriteCSV(cw); err != nil {
		t.Fatal(err)
	}
	if want := 1 + 2*(1+8); cw.writes < want { // header + 2 points × (aggregate + 8 servers)
		t.Fatalf("expected at least %d writes, got %d", want, cw.writes)
	}
	sentinel := errors.New("disk full")
	for n := 0; n < cw.writes; n++ {
		if err := res.WriteCSV(&failAfter{n: n, err: sentinel}); !errors.Is(err, sentinel) {
			t.Errorf("failure after %d writes was swallowed: got %v", n, err)
		}
	}
}
