package experiments

import (
	"fmt"
	"io"
)

// CSVWriter is implemented by results that can export their data series
// for external plotting. The CLI writes one file per experiment when
// -csv is given.
type CSVWriter interface {
	WriteCSV(w io.Writer) error
}

// WriteCSV exports Fig. 5's latency series.
func (r *Fig5Result) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "qps,shallow_mean_s,shallow_p99_s,deep_mean_s,deep_p99_s"); err != nil {
		return err
	}
	for _, p := range r.Points {
		if _, err := fmt.Fprintf(w, "%g,%g,%g,%g,%g\n",
			p.QPS, p.ShallowMean, p.ShallowP99, p.DeepMean, p.DeepP99); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV exports Fig. 6's residency/opportunity series.
func (r *Fig6Result) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "qps,cc0,cc1,all_idle_true,all_idle_censored,idle_periods,frac_20_200us,idle_p50_s,idle_p90_s"); err != nil {
		return err
	}
	for _, p := range r.Points {
		if _, err := fmt.Fprintf(w, "%g,%g,%g,%g,%g,%d,%g,%g,%g\n",
			p.QPS, p.CC0Residency, p.CC1Residency, p.AllIdleTrue, p.AllIdleCensored,
			p.IdlePeriods, p.FracIn20To200us, p.IdleP50, p.IdleP90); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV exports Fig. 7's power/latency series (idle point as qps=0).
func (r *Fig7Result) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "qps,shallow_w,pc1a_w,savings,shallow_mean_s,pc1a_mean_s,impact,pc1a_entries,pc1a_residency"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "0,%g,%g,%g,0,0,0,0,1\n", r.Idle.Cshallow, r.Idle.CPC1A, r.Idle.SavingsVsShallow); err != nil {
		return err
	}
	for _, p := range r.Points {
		if _, err := fmt.Fprintf(w, "%g,%g,%g,%g,%g,%g,%g,%d,%g\n",
			p.QPS, p.ShallowWatts, p.PC1AWatts, p.SavingsFrac,
			p.ShallowMean, p.PC1AMean, p.ImpactFrac, p.PC1AEntries, p.PC1AResidency); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV exports the Fig. 8/9 workload points.
func (r *WorkloadResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "service,label,load,qps,cc0,cc1,all_idle,all_idle_censored,shallow_w,pc1a_w,reduction,impact"); err != nil {
		return err
	}
	for _, p := range r.Points {
		if _, err := fmt.Fprintf(w, "%s,%s,%g,%g,%g,%g,%g,%g,%g,%g,%g,%g\n",
			r.Service, p.Label, p.Load, p.QPS, p.CC0Residency, p.CC1Residency,
			p.AllIdleTrue, p.AllIdleCensored, p.ShallowWatts, p.PC1AWatts,
			p.PowerReduction, p.ImpactFrac); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV exports the batching sweep.
func (r *BatchingResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "epoch_ns,watts,savings,pc1a_residency,mean_s,p99_s,latency_cost"); err != nil {
		return err
	}
	for _, p := range r.Points {
		if _, err := fmt.Fprintf(w, "%d,%g,%g,%g,%g,%g,%g\n",
			int64(p.Epoch), p.Watts, p.SavingsFrac, p.PC1AResidency,
			p.MeanLatency, p.P99Latency, p.LatencyCost); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV exports the remote-traffic sweep.
func (r *RemoteResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "snoop_rate,pc1a_residency,pc1a_entries,watts,savings"); err != nil {
		return err
	}
	for _, p := range r.Points {
		if _, err := fmt.Fprintf(w, "%g,%g,%d,%g,%g\n",
			p.SnoopRate, p.PC1AResidency, p.PC1AEntries, p.Watts, p.SavingsFrac); err != nil {
			return err
		}
	}
	return nil
}
