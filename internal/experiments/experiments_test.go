package experiments

import (
	"math"
	"strings"
	"testing"

	"agilepkgc/internal/sim"
)

func within(t *testing.T, name string, got, want, relTol float64) {
	t.Helper()
	if want == 0 {
		if math.Abs(got) > relTol {
			t.Errorf("%s = %v, want ~0", name, got)
		}
		return
	}
	if math.Abs(got-want)/math.Abs(want) > relTol {
		t.Errorf("%s = %v, want %v (±%.0f%%)", name, got, want, relTol*100)
	}
}

func TestTable1(t *testing.T) {
	r := Table1(QuickOptions())
	within(t, "PC0 SoC", r.PC0SoC, PaperPC0SoC, 0.02)
	within(t, "PC0 DRAM", r.PC0DRAM, PaperPC0DRAM, 0.15)
	within(t, "PC0idle SoC", r.PC0IdleSoC, PaperPC0IdleSoC, 0.01)
	within(t, "PC0idle DRAM", r.PC0IdleDRAM, PaperPC0IdleDRAM, 0.01)
	within(t, "PC6 SoC", r.PC6SoC, PaperPC6SoC, 0.02)
	within(t, "PC6 DRAM", r.PC6DRAM, PaperPC6DRAM, 0.05)
	within(t, "PC1A SoC", r.PC1ASoC, PaperPC1ASoC, 0.01)
	within(t, "PC1A DRAM", r.PC1ADRAM, PaperPC1ADRAM, 0.02)

	if r.PC1ALatency > 200*sim.Nanosecond {
		t.Errorf("PC1A latency %v exceeds the 200ns budget", r.PC1ALatency)
	}
	if r.PC6Latency < 50*sim.Microsecond {
		t.Errorf("PC6 latency %v, paper says >50us", r.PC6Latency)
	}
	if r.Speedup() < 250 {
		t.Errorf("speedup %.0fx, paper says >250x", r.Speedup())
	}
	if !strings.Contains(r.String(), "PC1A") {
		t.Error("report missing PC1A row")
	}
}

func TestTable2(t *testing.T) {
	r := Table2(QuickOptions())
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(r.Rows))
	}
	byState := map[string]Table2Row{}
	for _, row := range r.Rows {
		byState[row.State] = row
	}
	pc0 := byState["PC0"]
	if pc0.L3Cache != "Accessible" || pc0.PLLs != "On" || pc0.PCIeDMI != "L0" || pc0.DRAM != "Available" {
		t.Errorf("PC0 row wrong: %+v", pc0)
	}
	pc6 := byState["PC6"]
	if pc6.L3Cache != "Retention" || pc6.PLLs != "Off" || pc6.PCIeDMI != "L1" || pc6.DRAM != "Self Refresh" {
		t.Errorf("PC6 row wrong: %+v", pc6)
	}
	pc1a := byState["PC1A"]
	if pc1a.L3Cache != "Retention" || pc1a.PLLs != "On" || pc1a.PCIeDMI != "L0s" ||
		pc1a.UPI != "L0p" || pc1a.DRAM != "CKE off" {
		t.Errorf("PC1A row wrong: %+v", pc1a)
	}
	if !strings.Contains(r.String(), "Table 2") {
		t.Error("report header missing")
	}
}

func TestSec54(t *testing.T) {
	r := Sec54(QuickOptions())
	within(t, "Pcores_diff", r.PcoresDiff, PaperPcoresDiff, 0.02)
	within(t, "PIOs_diff", r.PIOsDiff, PaperPIOsDiff, 0.02)
	within(t, "Pdram_diff", r.PdramDiff, PaperPdramDiff, 0.02)
	within(t, "PPLLs_diff", r.PPLLsDiff, PaperPPLLsDiff, 0.01)
	within(t, "Psoc_PC6", r.PsocPC6, PaperPsocPC6, 0.03)
	within(t, "Pdram_PC6", r.PdramPC6, PaperPdramPC6, 0.05)
	within(t, "Psoc_PC1A", r.PsocPC1A, 27.5, 0.02)
	within(t, "Pdram_PC1A", r.PdramPC1A, 1.6, 0.02)
	if !strings.Contains(r.String(), "Eq. 2") {
		t.Error("report missing")
	}
}

func TestSec55(t *testing.T) {
	r := Sec55(QuickOptions())
	if r.EntryIOWindow != 16*sim.Nanosecond {
		t.Errorf("IO window %v, want 16ns", r.EntryIOWindow)
	}
	if r.Entry < 16*sim.Nanosecond || r.Entry > 24*sim.Nanosecond {
		t.Errorf("entry %v, paper says ~18ns", r.Entry)
	}
	if r.Exit > 160*sim.Nanosecond {
		t.Errorf("exit %v, paper says <=150ns (+FSM cycles)", r.Exit)
	}
	if r.Total > 200*sim.Nanosecond {
		t.Errorf("total %v, exceeds 200ns budget", r.Total)
	}
	if r.PC6Total < 50*sim.Microsecond {
		t.Errorf("PC6 total %v, want >50us", r.PC6Total)
	}
	if r.Speedup < 250 {
		t.Errorf("speedup %.0f, want >250", r.Speedup)
	}
	if !strings.Contains(r.String(), "Speedup") {
		t.Error("report missing")
	}
}

func TestEq1(t *testing.T) {
	opt := QuickOptions()
	opt.Duration = 300 * sim.Millisecond
	r := Eq1(opt)

	// Idle point is analytic: 1 − 29.1/49.5 ≈ 0.41.
	within(t, "idle savings", r.Idle.SavingsFrac, PaperEq1IdleSave, 0.03)

	// Loaded points depend on measured residency; the paper band is
	// generous (model + emulated residencies).
	if r.At5pct.RPC0Idle < 0.40 || r.At5pct.RPC0Idle > 0.75 {
		t.Errorf("all-idle at 5%% load = %v, paper ~0.57", r.At5pct.RPC0Idle)
	}
	if r.At10pct.RPC0Idle < 0.25 || r.At10pct.RPC0Idle > 0.55 {
		t.Errorf("all-idle at 10%% load = %v, paper ~0.39", r.At10pct.RPC0Idle)
	}
	within(t, "savings at 5%", r.At5pct.SavingsFrac, PaperEq1Savings5, 0.35)
	within(t, "savings at 10%", r.At10pct.SavingsFrac, PaperEq1Savings10, 0.35)
	// Ordering: savings shrink with load.
	if !(r.Idle.SavingsFrac > r.At5pct.SavingsFrac && r.At5pct.SavingsFrac > r.At10pct.SavingsFrac) {
		t.Errorf("savings not monotone: idle %v, 5%% %v, 10%% %v",
			r.Idle.SavingsFrac, r.At5pct.SavingsFrac, r.At10pct.SavingsFrac)
	}
	if !strings.Contains(r.String(), "Eq. 1") {
		t.Error("report missing")
	}
}

func TestFig5Shape(t *testing.T) {
	opt := QuickOptions()
	opt.Duration = 200 * sim.Millisecond
	r := Fig5(opt, []float64{10000, 50000, 300000})
	if len(r.Points) != 3 {
		t.Fatalf("points = %d", len(r.Points))
	}
	for _, p := range r.Points[:2] {
		// Low load: Cdeep visibly worse (CC6 wakes + powersave).
		if p.DeepMean <= p.ShallowMean*1.2 {
			t.Errorf("at %.0f QPS Cdeep mean %v not clearly above Cshallow %v",
				p.QPS, p.DeepMean, p.ShallowMean)
		}
	}
	// High load (>=300K): the Cdeep latency spike the paper attributes
	// to CC6/PC6 transitions delaying initial requests and queueing the
	// rest — most visible in the tail.
	last := r.Points[2]
	if last.DeepP99 < 2*last.ShallowP99 {
		t.Errorf("at 300K QPS expected a Cdeep tail spike: deep p99 %v vs shallow p99 %v",
			last.DeepP99, last.ShallowP99)
	}
	if last.DeepMean < 1.2*last.ShallowMean {
		t.Errorf("at 300K QPS Cdeep mean %v should clearly exceed Cshallow %v",
			last.DeepMean, last.ShallowMean)
	}
	if !strings.Contains(r.String(), "Fig 5") {
		t.Error("report missing")
	}
}

func TestFig6Shape(t *testing.T) {
	opt := QuickOptions()
	opt.Duration = 400 * sim.Millisecond
	r := Fig6(opt, []float64{4000, 50000, 100000})
	if len(r.Points) != 3 {
		t.Fatal("points missing")
	}
	p4k, p50k, p100k := r.Points[0], r.Points[1], r.Points[2]

	// (a) CC1 dominates at low load (paper: 76-98%).
	for _, p := range r.Points {
		if p.CC1Residency < 0.76 {
			t.Errorf("CC1 residency %v at %.0f QPS, paper says >=0.76", p.CC1Residency, p.QPS)
		}
		if sum := p.CC0Residency + p.CC1Residency; math.Abs(sum-1) > 0.01 {
			t.Errorf("residencies sum to %v", sum)
		}
	}

	// (b) censored opportunity bands: 77% @4K, 20% @50K, >=12% @100K.
	if p4k.AllIdleCensored < 0.60 || p4k.AllIdleCensored > 0.95 {
		t.Errorf("censored all-idle @4K = %v, paper 0.77", p4k.AllIdleCensored)
	}
	if p50k.AllIdleCensored < 0.10 || p50k.AllIdleCensored > 0.45 {
		t.Errorf("censored all-idle @50K = %v, paper 0.20", p50k.AllIdleCensored)
	}
	if p100k.AllIdleCensored < 0.03 {
		t.Errorf("censored all-idle @100K = %v, paper >=0.12", p100k.AllIdleCensored)
	}
	// Monotone decreasing.
	if !(p4k.AllIdleCensored > p50k.AllIdleCensored && p50k.AllIdleCensored > p100k.AllIdleCensored) {
		t.Error("censored opportunity not decreasing in load")
	}
	// Censoring only removes opportunity.
	for _, p := range r.Points {
		if p.AllIdleCensored > p.AllIdleTrue+1e-9 {
			t.Error("censored fraction exceeds true fraction")
		}
	}

	// (c) at low load, a large share of idle periods in 20-200us
	// (paper: ~60%).
	if p4k.FracIn20To200us < 0.3 {
		t.Errorf("idle periods in 20-200us @4K = %v, paper ~0.6", p4k.FracIn20To200us)
	}
	if !strings.Contains(r.String(), "Fig 6(b)") {
		t.Error("report missing")
	}
}

func TestFig7Shape(t *testing.T) {
	opt := QuickOptions()
	opt.Duration = 300 * sim.Millisecond
	r := Fig7(opt, []float64{4000, 50000})

	// (a) idle: 41% saving, CPC1A between Cdeep and Cshallow.
	within(t, "idle savings", r.Idle.SavingsVsShallow, PaperFig7IdleSavings, 0.05)
	if !(r.Idle.Cdeep < r.Idle.CPC1A && r.Idle.CPC1A < r.Idle.Cshallow) {
		t.Errorf("idle power ordering wrong: %v / %v / %v",
			r.Idle.Cdeep, r.Idle.CPC1A, r.Idle.Cshallow)
	}

	// (b) savings bands: 37% @4K, 14% @50K.
	p4k, p50k := r.Points[0], r.Points[1]
	if p4k.SavingsFrac < 0.25 || p4k.SavingsFrac > 0.45 {
		t.Errorf("savings @4K = %v, paper 0.37", p4k.SavingsFrac)
	}
	if p50k.SavingsFrac < 0.06 || p50k.SavingsFrac > 0.30 {
		t.Errorf("savings @50K = %v, paper 0.14", p50k.SavingsFrac)
	}
	if p4k.SavingsFrac <= p50k.SavingsFrac {
		t.Error("savings should shrink with load")
	}

	// (c) latency impact <0.1% everywhere.
	for _, p := range r.Points {
		if math.Abs(p.ImpactFrac) > PaperFig7MaxImpact+0.002 {
			t.Errorf("latency impact %v at %.0f QPS, paper <0.001", p.ImpactFrac, p.QPS)
		}
		if p.PC1AEntries == 0 {
			t.Errorf("no PC1A transitions at %.0f QPS", p.QPS)
		}
	}
	if !strings.Contains(r.String(), "Fig 7(a)") {
		t.Error("report missing")
	}
}

func TestFig8MySQL(t *testing.T) {
	opt := QuickOptions()
	opt.Duration = 300 * sim.Millisecond
	r := Fig8(opt)
	if len(r.Points) != 3 {
		t.Fatal("want 3 load levels")
	}
	// Paper: all-idle 20-37% across loads; reduction 7-14%.
	for _, p := range r.Points {
		if p.AllIdleTrue < 0.05 || p.AllIdleTrue > 0.75 {
			t.Errorf("MySQL %s all-idle %v out of plausible band", p.Label, p.AllIdleTrue)
		}
		if p.PowerReduction < 0.02 || p.PowerReduction > 0.40 {
			t.Errorf("MySQL %s reduction %v out of band (paper 7-14%%)", p.Label, p.PowerReduction)
		}
		if math.Abs(p.ImpactFrac) > 0.005 {
			t.Errorf("MySQL %s latency impact %v, paper negligible", p.Label, p.ImpactFrac)
		}
	}
	// Monotone: less idle, less reduction as load grows.
	if !(r.Points[0].PowerReduction > r.Points[2].PowerReduction) {
		t.Error("reduction should fall from low to high load")
	}
	within(t, "idle reduction", r.IdleReduction, 0.41, 0.05)
	if !strings.Contains(r.String(), "MySQL") {
		t.Error("report missing")
	}
}

func TestFig9Kafka(t *testing.T) {
	opt := QuickOptions()
	opt.Duration = 300 * sim.Millisecond
	r := Fig9(opt)
	if len(r.Points) != 2 {
		t.Fatal("want 2 load levels")
	}
	for _, p := range r.Points {
		if p.AllIdleTrue < 0.05 || p.AllIdleTrue > 0.85 {
			t.Errorf("Kafka %s all-idle %v out of band (paper 15-47%%)", p.Label, p.AllIdleTrue)
		}
		if p.PowerReduction < 0.03 || p.PowerReduction > 0.40 {
			t.Errorf("Kafka %s reduction %v out of band (paper 9-19%%)", p.Label, p.PowerReduction)
		}
	}
	if r.Points[0].PowerReduction <= r.Points[1].PowerReduction {
		t.Error("low-load reduction should exceed high-load")
	}
	if !strings.Contains(r.String(), "Kafka") {
		t.Error("report missing")
	}
}

func TestArea(t *testing.T) {
	r := Area(DefaultAreaModel())
	if r.IOSMSignals > 0.0024 {
		t.Errorf("IOSM signals %v, paper <0.24%%", r.IOSMSignals)
	}
	if r.IOSMControllers > 0.0008 {
		t.Errorf("controller mods %v, paper <0.08%%", r.IOSMControllers)
	}
	if r.CLMRSignals > 0.0015 {
		t.Errorf("CLMR signals %v, paper <0.14%% (rounding)", r.CLMRSignals)
	}
	if r.APMULogic > 0.001 {
		t.Errorf("APMU logic %v, paper <0.1%%", r.APMULogic)
	}
	if r.Total > 0.0075 {
		t.Errorf("total %v, paper <0.75%%", r.Total)
	}
	// Wider interconnect shrinks signal overhead.
	wide := DefaultAreaModel()
	wide.IOInterconnectWidthBits = 512
	if Area(wide).IOSMSignals >= r.IOSMSignals {
		t.Error("512-bit interconnect should cost less per signal")
	}
	if !strings.Contains(r.String(), "Total") {
		t.Error("report missing")
	}
	// AreaInto must match Area and allocate nothing, so BenchmarkArea
	// stays at 0 allocs/op.
	var into AreaResult
	AreaInto(&into, DefaultAreaModel())
	if into != *r {
		t.Errorf("AreaInto = %+v, Area = %+v", into, *r)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		AreaInto(&into, DefaultAreaModel())
	}); allocs > 0 {
		t.Errorf("AreaInto allocates %.1f times per run, want 0", allocs)
	}
}

func TestSensitivity(t *testing.T) {
	opt := QuickOptions()
	r := Sensitivity(opt)

	// Full APC must beat every ablated variant on idle power.
	full := r.Ablations[0]
	if full.Name != "full APC" {
		t.Fatal("first ablation row should be the full system")
	}
	for _, a := range r.Ablations[1:] {
		if a.IdleW <= full.IdleW {
			t.Errorf("%s idle %.1fW should exceed full APC %.1fW", a.Name, a.IdleW, full.IdleW)
		}
		if a.IdleSavings >= full.IdleSavings {
			t.Errorf("%s savings %.3f should be below full APC %.3f", a.Name, a.IdleSavings, full.IdleSavings)
		}
	}
	within(t, "full APC idle savings", full.IdleSavings, 0.41, 0.05)

	// PLL policy: keeping PLLs locked must be >10x faster on exit.
	if float64(r.PLLOffExit)/float64(r.PLLOnExit) < 10 {
		t.Errorf("PLL-off exit %v should dwarf PLL-on exit %v", r.PLLOffExit, r.PLLOnExit)
	}
	if r.PLLOnCostW > 0.1 {
		t.Errorf("PLL-on cost %v W, should be tiny (56 mW)", r.PLLOnCostW)
	}

	// APMU clock: faster clock, faster transitions (monotone).
	if len(r.APMUClockPts) < 3 {
		t.Fatalf("clock sweep too short: %d points", len(r.APMUClockPts))
	}
	for i := 1; i < len(r.APMUClockPts); i++ {
		if r.APMUClockPts[i].Entry > r.APMUClockPts[i-1].Entry {
			t.Error("entry latency should not grow with FSM clock")
		}
	}

	// Slew: exit latency halves as slew doubles (ramp dominated).
	if len(r.SlewPts) != 4 {
		t.Fatalf("slew sweep wrong length")
	}
	for i := 1; i < len(r.SlewPts); i++ {
		if r.SlewPts[i].Exit >= r.SlewPts[i-1].Exit {
			t.Error("exit latency should fall with steeper slew")
		}
	}
	// At 1 mV/ns the 300 mV swing alone is 300ns.
	if r.SlewPts[0].Exit < 300*sim.Nanosecond {
		t.Errorf("1mV/ns exit %v, want >=300ns", r.SlewPts[0].Exit)
	}

	if !strings.Contains(r.String(), "Sensitivity") {
		t.Error("report missing")
	}
}

func TestBatchingExtension(t *testing.T) {
	opt := QuickOptions()
	opt.Duration = 300 * sim.Millisecond
	r := Batching(opt, 50000, DefaultBatchingEpochs)
	if len(r.Points) != 4 {
		t.Fatalf("points = %d", len(r.Points))
	}
	off := r.Points[0]
	if off.Epoch != 0 {
		t.Fatal("first point should be unbatched")
	}
	best := r.Points[len(r.Points)-1] // longest epoch
	// Batching must raise PC1A residency and savings over unbatched APC.
	if best.PC1AResidency <= off.PC1AResidency {
		t.Errorf("batched residency %v should exceed unbatched %v",
			best.PC1AResidency, off.PC1AResidency)
	}
	if best.SavingsFrac <= off.SavingsFrac {
		t.Errorf("batched savings %v should exceed unbatched %v",
			best.SavingsFrac, off.SavingsFrac)
	}
	// Cost is bounded: mean latency grows by less than one epoch.
	addedLat := best.MeanLatency - off.MeanLatency
	if addedLat <= 0 || addedLat > float64(best.Epoch)/float64(sim.Second) {
		t.Errorf("latency cost %v s out of (0, epoch] band", addedLat)
	}
	if !strings.Contains(r.String(), "Extension") {
		t.Error("report missing")
	}
}

func TestRemoteTrafficErosion(t *testing.T) {
	opt := QuickOptions()
	opt.Duration = 200 * sim.Millisecond
	r := Remote(opt, 20000, []float64{0, 10000, 200000})
	if len(r.Points) != 3 {
		t.Fatalf("points = %d", len(r.Points))
	}
	// Residency must fall monotonically with remote traffic.
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].PC1AResidency >= r.Points[i-1].PC1AResidency {
			t.Errorf("residency did not fall: %v -> %v at rate %v",
				r.Points[i-1].PC1AResidency, r.Points[i].PC1AResidency, r.Points[i].SnoopRate)
		}
	}
	// Heavy remote traffic erodes residency measurably — but because
	// each PC1A round trip costs only ~0.5 µs, even 200K snoops/s costs
	// just a few points, which is itself the interesting result: the
	// agility bounds the damage.
	if drop := r.Points[0].PC1AResidency - r.Points[2].PC1AResidency; drop < 0.004 {
		t.Errorf("erosion %v at 200k snoops/s implausibly small", drop)
	}
	if r.Points[2].PC1AEntries <= r.Points[0].PC1AEntries {
		t.Error("snoop traffic should multiply PC1A entry/exit cycles")
	}
	// Savings ordering follows residency.
	if r.Points[2].SavingsFrac >= r.Points[0].SavingsFrac {
		t.Error("savings should erode with remote traffic")
	}
	if !strings.Contains(r.String(), "Deployment") {
		t.Error("report missing")
	}
}

func TestCSVWriters(t *testing.T) {
	opt := QuickOptions()
	cases := []struct {
		name   string
		result CSVWriter
		header string
	}{
		{"fig5", Fig5(opt, []float64{10000}), "qps,shallow_mean_s"},
		{"fig6", Fig6(opt, []float64{10000}), "qps,cc0"},
		{"fig7", Fig7(opt, []float64{10000}), "qps,shallow_w"},
		{"fig8", Fig8(opt), "service,label"},
		{"fig9", Fig9(opt), "service,label"},
		{"batching", Batching(opt, 20000, []sim.Duration{0, 50 * sim.Microsecond}), "epoch_ns"},
		{"remote", Remote(opt, 20000, []float64{0, 10000}), "snoop_rate"},
	}
	for _, c := range cases {
		var sb strings.Builder
		if err := c.result.WriteCSV(&sb); err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		out := sb.String()
		lines := strings.Split(strings.TrimSpace(out), "\n")
		if !strings.HasPrefix(lines[0], c.header) {
			t.Errorf("%s header = %q, want prefix %q", c.name, lines[0], c.header)
		}
		if len(lines) < 2 {
			t.Errorf("%s has no data rows", c.name)
		}
		// Every data row has the same number of commas as the header.
		nCols := strings.Count(lines[0], ",")
		for i, ln := range lines[1:] {
			if strings.Count(ln, ",") != nCols {
				t.Errorf("%s row %d has wrong column count: %q", c.name, i+1, ln)
			}
		}
	}
}
