package experiments

import (
	"fmt"
	"sort"
)

// This file is the experiment registry. Every paper artifact registers
// itself from its own file's init (next to the code that computes it)
// under an ordinal that fixes the canonical report order — the order
// `apcsim run all` prints and DESIGN.md §3 lists. Nothing outside this
// package maintains a name list: the CLI, the golden-report test and the
// docs all enumerate All().

// Experiment is one regenerable artifact of the evaluation: a table,
// figure or study that runs the simulator under Options and renders a
// report. Implementations are registered once at init time.
type Experiment interface {
	// Name is the stable CLI identifier ("table1", "fig7", ...).
	Name() string
	// Describe is a one-line summary for listings.
	Describe() string
	// Run executes the experiment. Results are a pure function of
	// Options — same Options, same Result, at any parallelism.
	Run(Options) (Result, error)
}

// Result is what an experiment run produces. Report renders the text
// artifact shown side by side with the paper's published numbers. Every
// Result must also marshal cleanly with encoding/json — the CLI's -json
// output and TestRegistryResultsMarshalJSON depend on it — and may
// additionally implement CSVWriter to export its data series.
type Result interface {
	Report() string
}

// funcExperiment backs Define: the common case of an experiment that is
// a single pure function.
type funcExperiment struct {
	name string
	desc string
	run  func(Options) (Result, error)
}

func (e funcExperiment) Name() string                  { return e.name }
func (e funcExperiment) Describe() string              { return e.desc }
func (e funcExperiment) Run(o Options) (Result, error) { return e.run(o) }

type regEntry struct {
	ord int
	exp Experiment
}

var registry = struct {
	entries []regEntry
	byName  map[string]Experiment
}{byName: map[string]Experiment{}}

// Register adds an experiment under the given ordinal. Ordinals are
// declared next to each experiment and only define the canonical
// ordering; gaps are fine. Duplicate names or ordinals panic at init.
func Register(ord int, e Experiment) {
	name := e.Name()
	if name == "" {
		panic("experiments: Register with empty name")
	}
	if _, dup := registry.byName[name]; dup {
		panic(fmt.Sprintf("experiments: duplicate experiment %q", name))
	}
	for _, en := range registry.entries {
		if en.ord == ord {
			panic(fmt.Sprintf("experiments: ordinal %d reused by %q and %q",
				ord, en.exp.Name(), name))
		}
	}
	registry.byName[name] = e
	registry.entries = append(registry.entries, regEntry{ord: ord, exp: e})
	sort.SliceStable(registry.entries, func(i, j int) bool {
		return registry.entries[i].ord < registry.entries[j].ord
	})
}

// Define registers a function-backed experiment (the common case).
func Define(ord int, name, desc string, run func(Options) (Result, error)) {
	Register(ord, funcExperiment{name: name, desc: desc, run: run})
}

// All returns every registered experiment in canonical order.
func All() []Experiment {
	out := make([]Experiment, len(registry.entries))
	for i, en := range registry.entries {
		out[i] = en.exp
	}
	return out
}

// Names returns the experiment names in canonical order.
func Names() []string {
	out := make([]string, len(registry.entries))
	for i, en := range registry.entries {
		out[i] = en.exp.Name()
	}
	return out
}

// Lookup finds an experiment by name.
func Lookup(name string) (Experiment, bool) {
	e, ok := registry.byName[name]
	return e, ok
}
