package experiments

// trace-replay is the recorded-arrival counterpart of the synthetic
// cluster experiments: it records one bursty Memcached stream into the
// binary trace format (DESIGN.md §10), replays it through an identical
// fleet, and checks the two measurements bit for bit. The artifact is
// the determinism demonstration the replay subsystem's parity suite
// enforces in CI — a trace is a complete, portable substitute for the
// generator that produced it, not an approximation of one.

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"agilepkgc/internal/cluster"
	"agilepkgc/internal/sim"
	"agilepkgc/internal/workload"
	"agilepkgc/internal/workload/replay"
)

// Fixed operating point of the trace-replay demonstration.
const (
	// DefaultTraceQPS and DefaultTraceBurstiness pick a bursty stream:
	// burstiness is where replay fidelity matters most, because the
	// MMPP2 phase state makes approximate reproduction impossible.
	DefaultTraceQPS        = 200000.0
	DefaultTraceBurstiness = 8.0
	// DefaultTraceServers sizes the fleet the stream is balanced over.
	DefaultTraceServers = 4
)

func init() {
	Define(200, "trace-replay",
		"record a bursty stream to the binary trace format, replay it, prove bit-identical measurements",
		func(o Options) (Result, error) { return TraceReplay(o) })
}

// TraceReplayResult is the trace-replay artifact: the same fleet
// measured twice, once driven by the generator and once by its
// recording.
type TraceReplayResult struct {
	Workload     string              `json:"workload"`
	AggregateQPS float64             `json:"aggregate_qps"`
	Burstiness   float64             `json:"burstiness"`
	Servers      int                 `json:"servers"`
	Records      uint64              `json:"records"`
	TraceBytes   int                 `json:"trace_bytes"`
	Duration     sim.Duration        `json:"duration_ns"`
	Synthetic    cluster.Measurement `json:"synthetic"`
	Replayed     cluster.Measurement `json:"replayed"`
	// Identical reports whether the replayed measurement matched the
	// synthetic one bit for bit — the tentpole parity contract.
	Identical bool `json:"identical"`
}

// TraceReplay records the generator's stream over the experiment's
// exact (warmup, duration) window, then measures one fleet per source.
// Both fleets are built from the same config and seed; the only
// difference is who emits the arrivals.
func TraceReplay(opt Options) (*TraceReplayResult, error) {
	specFn := func() workload.Spec {
		return workload.MemcachedBursty(DefaultTraceQPS, DefaultTraceBurstiness)
	}
	var buf replay.MemBuffer
	hdr, err := replay.Synthesize(&buf, specFn(), opt.Seed, opt.Warmup(), opt.Duration)
	if err != nil {
		return nil, fmt.Errorf("trace-replay: synthesize: %w", err)
	}

	cfg := cluster.Config{
		Policy:    cluster.PowerAware,
		P99Target: DefaultClusterP99Target,
		Topology:  cluster.Topology{Racks: 1, ServersPerRack: DefaultTraceServers},
	}
	synth := measureFleet(new(cluster.Reuse), opt, cfg, specFn)

	if _, err := buf.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	rd, err := replay.NewReader(&buf)
	if err != nil {
		return nil, fmt.Errorf("trace-replay: reopen recording: %w", err)
	}
	rp, err := replay.New(rd, replay.Options{})
	if err != nil {
		return nil, err
	}
	rcfg := cfg
	rcfg.NewSource = func(eng *sim.Engine, _ workload.Spec, _ uint64, sink func(*workload.Request)) workload.Source {
		if err := rp.Bind(eng, sink); err != nil {
			panic(fmt.Sprintf("trace-replay: bind validated recording: %v", err))
		}
		return rp
	}
	replayed := measureFleet(new(cluster.Reuse), opt, rcfg, func() workload.Spec { return hdr.Spec() })

	return &TraceReplayResult{
		Workload:     hdr.Name,
		AggregateQPS: hdr.MeanQPS,
		Burstiness:   DefaultTraceBurstiness,
		Servers:      DefaultTraceServers,
		Records:      hdr.Count,
		TraceBytes:   len(buf.Bytes()),
		Duration:     opt.Duration,
		Synthetic:    synth,
		Replayed:     replayed,
		Identical:    measurementsEqual(synth, replayed),
	}, nil
}

// measurementsEqual compares two measurements bit for bit through their
// canonical JSON form (Measurement holds slices and pointers, so == is
// unavailable; JSON equality is exactly the equality the artifact files
// expose).
func measurementsEqual(a, b cluster.Measurement) bool {
	aj, aerr := json.Marshal(a)
	bj, berr := json.Marshal(b)
	return aerr == nil && berr == nil && string(aj) == string(bj)
}

// Report implements Result.
func (r *TraceReplayResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Trace replay: bursty %.0f aggregate QPS %s on %d servers (power_aware, %v p99 target)\n",
		r.AggregateQPS, r.Workload, r.Servers, DefaultClusterP99Target)
	fmt.Fprintf(&b, "(recorded %d arrivals, %d bytes; replayed through an identical fleet)\n",
		r.Records, r.TraceBytes)
	t := &table{header: []string{"source", "generated", "served", "dropped", "p50", "p99", "fleet W", "all-idle", "PC1A res"}}
	for _, row := range []struct {
		name string
		m    cluster.Measurement
	}{{"synthetic", r.Synthetic}, {"replayed", r.Replayed}} {
		pc1a := "-"
		if row.m.PC1AResidency != nil {
			pc1a = pct(*row.m.PC1AResidency)
		}
		t.add(
			row.name,
			fmt.Sprintf("%d", row.m.Generated),
			fmt.Sprintf("%d", row.m.Served),
			fmt.Sprintf("%d", row.m.Dropped),
			fmt.Sprintf("%.1fus", row.m.P50Latency*1e6),
			fmt.Sprintf("%.1fus", row.m.P99Latency*1e6),
			fmt.Sprintf("%.1fW", row.m.TotalWatts),
			pct(row.m.AllIdle),
			pc1a,
		)
	}
	b.WriteString(t.String())
	if r.Identical {
		b.WriteString("replay == synthetic: every measured byte identical\n")
	} else {
		b.WriteString("replay != synthetic: MEASUREMENTS DIVERGED — replay determinism is broken\n")
	}
	return b.String()
}

// WriteCSV implements CSVWriter: one row per source.
func (r *TraceReplayResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "source,generated,served,dropped,mean_s,p50_s,p99_s,p999_s,soc_w,dram_w,total_w,all_idle,pc1a_residency,identical"); err != nil {
		return err
	}
	for _, row := range []struct {
		name string
		m    cluster.Measurement
	}{{"synthetic", r.Synthetic}, {"replayed", r.Replayed}} {
		if _, err := fmt.Fprintf(w, "%s,%d,%d,%d,%g,%g,%g,%g,%g,%g,%g,%g,%s,%t\n",
			row.name, row.m.Generated, row.m.Served, row.m.Dropped,
			row.m.MeanLatency, row.m.P50Latency, row.m.P99Latency, row.m.P999Latency,
			row.m.SoCWatts, row.m.DRAMWatts, row.m.TotalWatts,
			row.m.AllIdle, pc1aCell(row.m.PC1AResidency), r.Identical); err != nil {
			return err
		}
	}
	return nil
}
