package experiments

// drain-hysteresis closes the loop the rack-packing golden opened: flat
// packing buys deep PC1A at a multiple of the tail, because the packing
// frontier *flaps* — the last packed server is abandoned after every
// burst and re-admitted by the next one, so its idle periods never grow
// long. The experiment sweeps the hysteretic drain hold (DESIGN.md §7)
// on one bursty racked fleet for both cap-based policies: hold 0 is the
// static PR 4 baseline byte for byte, and each longer hold trades tail
// latency for consolidated idleness on the drained members. The
// per-server tables carry the acceptance signal: the frontier servers'
// PC1A residency at hold > 0 versus their flapping selves at hold 0.

import (
	"fmt"
	"io"
	"strings"

	"agilepkgc/internal/cluster"
	"agilepkgc/internal/sim"
	"agilepkgc/internal/workload"
)

// Defaults for the drain-hysteresis experiment, exported so callers can
// rerun the registered artifact programmatically with explicit holds.
var (
	// DefaultDrainHolds is the swept hysteresis hold: the static
	// baseline plus three decades of consolidation.
	DefaultDrainHolds = []sim.Duration{
		0, 200 * sim.Microsecond, 1000 * sim.Microsecond, 5000 * sim.Microsecond,
	}
	// DefaultDrainPolicies duels the member-granular packer against the
	// rack-first one on every hold.
	DefaultDrainPolicies = []cluster.Policy{cluster.PowerAware, cluster.RackPowerAware}
	// DefaultDrainTopology is the fleet shape: two racks of four, the
	// rack-packing duel's first shape, so rack_power_aware has a remote
	// power zone to keep dark.
	DefaultDrainTopology = cluster.Topology{Racks: 2, ServersPerRack: 4}
)

// Fixed operating point of the drain-hysteresis sweep.
const (
	// DefaultDrainAggregateQPS and DefaultDrainBurstiness fix the
	// bursty stream at half the rack-packing rate: bursty enough that
	// the packing frontier moves, light enough that short holds only
	// deepen queues the p99 budget already covers — which is what lets
	// the 200 µs hold consolidate idleness at equal-or-better p99.
	DefaultDrainAggregateQPS = 300000.0
	DefaultDrainBurstiness   = DefaultRackBurstiness
	// DefaultDrainTorLatency matches the rack-packing ToR hop.
	DefaultDrainTorLatency = DefaultRackTorLatency
	// DefaultDrainP99Target is the packing budget; holds are swept
	// against the same target the static baseline packs to.
	DefaultDrainP99Target = DefaultClusterP99Target
)

func init() {
	Define(180, "drain-hysteresis",
		"hysteretic drain hold sweep: power_aware vs rack_power_aware on a bursty racked fleet",
		func(o Options) (Result, error) { return DrainHysteresis(o, DefaultDrainHolds) })
}

// DrainPoint is one measured (policy, hold) operating point.
type DrainPoint struct {
	Policy string `json:"policy"`
	// HoldUS is the hysteretic drain hold in microseconds (0 = the
	// static baseline).
	HoldUS float64             `json:"hold_us"`
	Fleet  cluster.Measurement `json:"fleet"`
}

// drainedPC1A averages PC1A residency over the members the controller
// actually drained (drains > 0); ok is false when no member was (the
// hold-0 baseline).
func (p DrainPoint) drainedPC1A() (mean float64, n int, ok bool) {
	for _, ss := range p.Fleet.Servers {
		if ss.Drains == 0 || ss.PC1AResidency == nil {
			continue
		}
		mean += *ss.PC1AResidency
		n++
	}
	if n == 0 {
		return 0, 0, false
	}
	return mean / float64(n), n, true
}

// DrainHysteresisResult is the drain-hysteresis artifact.
type DrainHysteresisResult struct {
	AggregateQPS float64      `json:"aggregate_qps"`
	Burstiness   float64      `json:"burstiness"`
	Topology     string       `json:"topology"`
	P99Target    sim.Duration `json:"p99_target_ns"`
	TorLatency   sim.Duration `json:"tor_latency_ns"`
	Duration     sim.Duration `json:"duration_ns"`
	Points       []DrainPoint `json:"points"`
}

// DrainHysteresis evaluates both cap-based policies at every hold under
// one fixed bursty aggregate Memcached rate. Each (policy, hold) pair
// is an independent fleet on its own engine, so points fan out through
// the §2 worker pool like any other sweep.
func DrainHysteresis(opt Options, holds []sim.Duration) (*DrainHysteresisResult, error) {
	if len(holds) == 0 {
		return nil, fmt.Errorf("drain-hysteresis: no holds")
	}
	for _, h := range holds {
		if h < 0 {
			return nil, fmt.Errorf("drain-hysteresis: negative hold %v", h)
		}
	}
	specFn := func() workload.Spec {
		return workload.MemcachedBursty(DefaultDrainAggregateQPS, DefaultDrainBurstiness)
	}
	type pt struct {
		pol  cluster.Policy
		hold sim.Duration
	}
	var pts []pt
	for _, pol := range DefaultDrainPolicies {
		for _, h := range holds {
			pts = append(pts, pt{pol: pol, hold: h})
		}
	}
	res := &DrainHysteresisResult{
		AggregateQPS: specFn().MeanQPS(),
		Burstiness:   DefaultDrainBurstiness,
		Topology:     DefaultDrainTopology.String(),
		P99Target:    DefaultDrainP99Target,
		TorLatency:   DefaultDrainTorLatency,
		Duration:     opt.Duration,
	}
	res.Points = SweepWith(opt, pts, newReuse, func(reuse *cluster.Reuse, p pt) DrainPoint {
		return DrainPoint{
			Policy: p.pol.String(),
			HoldUS: p.hold.Seconds() * 1e6,
			Fleet: measureFleet(reuse, opt, cluster.Config{
				Policy:     p.pol,
				P99Target:  DefaultDrainP99Target,
				Topology:   DefaultDrainTopology,
				TorLatency: DefaultDrainTorLatency,
				DrainHold:  p.hold,
			}, specFn),
		}
	})
	return res, nil
}

// Report implements Result.
func (r *DrainHysteresisResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Drain hysteresis: bursty %.0f aggregate QPS Memcached on a %s fleet, %v p99 target\n",
		r.AggregateQPS, r.Topology, r.P99Target)
	b.WriteString("(hold 0 = the static cap baseline; drained members take no traffic until empty + hold)\n")
	t := &table{header: []string{"policy", "hold", "p50", "p99", "p99.9", "fleet W", "W/kQPS", "PC1A res", "drained PC1A", "drains", "dropped"}}
	for _, p := range r.Points {
		pc1a := "-"
		if p.Fleet.PC1AResidency != nil {
			pc1a = pct(*p.Fleet.PC1AResidency)
		}
		drained := "-"
		if mean, n, ok := p.drainedPC1A(); ok {
			drained = fmt.Sprintf("%s/%dsrv", pct(mean), n)
		}
		t.add(
			p.Policy,
			fmt.Sprintf("%.0fus", p.HoldUS),
			fmt.Sprintf("%.1fus", p.Fleet.P50Latency*1e6),
			fmt.Sprintf("%.1fus", p.Fleet.P99Latency*1e6),
			fmt.Sprintf("%.1fus", p.Fleet.P999Latency*1e6),
			fmt.Sprintf("%.1fW", p.Fleet.TotalWatts),
			fmt.Sprintf("%.2f", wattsPerKQPS(p.Fleet)),
			pc1a,
			drained,
			fmt.Sprintf("%d", p.Fleet.Drains),
			fmt.Sprintf("%d", p.Fleet.Dropped),
		)
	}
	b.WriteString(t.String())

	// Per-server tables: the frontier's flap at hold 0 versus its
	// consolidated idleness at hold > 0 is a per-server story.
	for _, p := range r.Points {
		fmt.Fprintf(&b, "\nper-server [%s hold=%.0fus]:\n", p.Policy, p.HoldUS)
		st := &table{header: []string{"server", "rack", "routed", "drains", "p99", "total", "all-idle", "PC1A res"}}
		for _, ss := range p.Fleet.Servers {
			pc1a := "-"
			if ss.PC1AResidency != nil {
				pc1a = pct(*ss.PC1AResidency)
			}
			st.add(
				fmt.Sprintf("%d", ss.Index),
				fmt.Sprintf("%d", ss.Rack),
				fmt.Sprintf("%d", ss.Routed),
				fmt.Sprintf("%d", ss.Drains),
				fmt.Sprintf("%.1fus", ss.P99Latency*1e6),
				fmt.Sprintf("%.1fW", ss.TotalWatts),
				pct(ss.AllIdle),
				pc1a,
			)
		}
		b.WriteString(st.String())
	}
	return b.String()
}

// WriteCSV implements CSVWriter: one aggregate row per point (server
// cell empty) followed by its per-server rows, so one file holds both
// granularities like the other cluster CSVs.
func (r *DrainHysteresisResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "policy,hold_us,server,rack,routed,served,drains,dropped,mean_s,p99_s,p999_s,soc_w,dram_w,total_w,all_idle,pc1a_residency"); err != nil {
		return err
	}
	for _, p := range r.Points {
		if _, err := fmt.Fprintf(w, "%s,%g,,,%d,%d,%d,%d,%g,%g,%g,%g,%g,%g,%g,%s\n",
			p.Policy, p.HoldUS,
			p.Fleet.Generated, p.Fleet.Served, p.Fleet.Drains, p.Fleet.Dropped,
			p.Fleet.MeanLatency, p.Fleet.P99Latency, p.Fleet.P999Latency,
			p.Fleet.SoCWatts, p.Fleet.DRAMWatts, p.Fleet.TotalWatts,
			p.Fleet.AllIdle, pc1aCell(p.Fleet.PC1AResidency)); err != nil {
			return err
		}
		for _, ss := range p.Fleet.Servers {
			if _, err := fmt.Fprintf(w, "%s,%g,%d,%d,%d,%d,%d,%d,%g,%g,,%g,%g,%g,%g,%s\n",
				p.Policy, p.HoldUS, ss.Index, ss.Rack,
				ss.Routed, ss.Served, ss.Drains, ss.Dropped,
				ss.MeanLatency, ss.P99Latency,
				ss.SoCWatts, ss.DRAMWatts, ss.TotalWatts,
				ss.AllIdle, pc1aCell(ss.PC1AResidency)); err != nil {
				return err
			}
		}
	}
	return nil
}
