package experiments

import (
	"fmt"
	"strings"

	"agilepkgc/internal/soc"
	"agilepkgc/internal/workload"
)

// Fig5Point is one QPS operating point of paper Fig. 5: average and tail
// latency of Memcached under the two baseline configurations.
type Fig5Point struct {
	QPS float64

	ShallowMean float64 // seconds
	ShallowP99  float64
	DeepMean    float64
	DeepP99     float64

	ShallowServed uint64
	DeepServed    uint64
}

// Fig5Result is the full sweep.
type Fig5Result struct {
	Points []Fig5Point
}

// DefaultFig5QPS is the swept request-rate axis; the shaded low-load
// region of the paper is 4K–100K.
var DefaultFig5QPS = []float64{4000, 10000, 20000, 50000, 100000, 200000, 300000, 400000}

func init() {
	Define(60, "fig5", "Memcached latency, Cshallow vs Cdeep (QPS sweep, paper Fig. 5)",
		func(o Options) (Result, error) { return Fig5(o, DefaultFig5QPS), nil })
}

// Fig5 sweeps Memcached load over Cshallow and Cdeep across the given
// request-rate axis (the paper's axis is DefaultFig5QPS).
func Fig5(opt Options, qpsList []float64) *Fig5Result {
	res := &Fig5Result{}
	res.Points = Sweep(opt, qpsList, func(qps float64) Fig5Point {
		spec := workload.Memcached(qps)
		sh := runPoint(soc.Cshallow, spec, opt)
		dp := runPoint(soc.Cdeep, spec, opt)
		return Fig5Point{
			QPS:           qps,
			ShallowMean:   sh.srv.Latencies().Mean(),
			ShallowP99:    sh.srv.Latencies().Quantile(0.99),
			DeepMean:      dp.srv.Latencies().Mean(),
			DeepP99:       dp.srv.Latencies().Quantile(0.99),
			ShallowServed: sh.srv.Served(),
			DeepServed:    dp.srv.Served(),
		}
	})
	return res
}

// Report implements Result.
func (r *Fig5Result) Report() string { return r.String() }

// String renders the sweep.
func (r *Fig5Result) String() string {
	var b strings.Builder
	b.WriteString("Fig 5: Memcached latency, Cshallow vs Cdeep (paper: Cdeep worse everywhere; spike at >=300K)\n")
	t := &table{header: []string{"QPS", "Cshallow mean", "Cshallow p99", "Cdeep mean", "Cdeep p99", "Cdeep/Cshallow mean"}}
	for _, p := range r.Points {
		t.add(fmt.Sprintf("%.0fK", p.QPS/1000),
			us(p.ShallowMean), us(p.ShallowP99),
			us(p.DeepMean), us(p.DeepP99),
			fmt.Sprintf("%.2fx", p.DeepMean/p.ShallowMean))
	}
	b.WriteString(t.String())
	return b.String()
}

// us formats seconds as microseconds.
func us(sec float64) string { return fmt.Sprintf("%.1fus", sec*1e6) }
