package experiments

import (
	"fmt"
	"strings"

	"agilepkgc/internal/cpu"
	"agilepkgc/internal/sim"
	"agilepkgc/internal/soc"
	"agilepkgc/internal/workload"
)

// WorkloadPoint is one load level of paper Fig. 8 (MySQL) or Fig. 9
// (Kafka): baseline residencies, the projected PC1A residency, and the
// measured power reduction of the CPC1A configuration.
type WorkloadPoint struct {
	Label string
	Load  float64
	QPS   float64

	// Cshallow baseline.
	CC0Residency    float64
	CC1Residency    float64
	AllIdleTrue     float64
	AllIdleCensored float64

	// CPC1A vs Cshallow.
	ShallowWatts   float64
	PC1AWatts      float64
	PowerReduction float64

	// Latency impact per the paper's performance model (Sec. 6):
	// (PC1A transitions × 200 ns × mean cores active after idle) spread
	// over all requests. Paper: negligible, <0.01% for both workloads.
	ImpactFrac float64
}

// WorkloadResult is a set of points for one service.
type WorkloadResult struct {
	Service string
	Points  []WorkloadPoint
	// IdleReduction is the fully idle server reduction (paper: 41%).
	IdleReduction float64
}

func init() {
	Define(90, "fig8", "MySQL residency and power reduction (load sweep, paper Fig. 8)",
		func(o Options) (Result, error) { return Fig8(o), nil })
	Define(100, "fig9", "Kafka residency and power reduction (load sweep, paper Fig. 9)",
		func(o Options) (Result, error) { return Fig9(o), nil })
}

// Fig8 evaluates MySQL at the paper's low/mid/high loads (8%, 16%, 42%).
func Fig8(opt Options) *WorkloadResult {
	return workloadFigure(opt, "MySQL", []workloadLevel{
		{"low", 0.08}, {"mid", 0.16}, {"high", 0.42},
	}, func(load float64) workload.Spec { return workload.MySQL(load, 10) })
}

// Fig9 evaluates Kafka at the paper's low/high loads (8%, 16%).
func Fig9(opt Options) *WorkloadResult {
	return workloadFigure(opt, "Kafka", []workloadLevel{
		{"low", 0.08}, {"high", 0.16},
	}, func(load float64) workload.Spec { return workload.Kafka(load, 10) })
}

type workloadLevel struct {
	label string
	load  float64
}

func workloadFigure(opt Options, service string, levels []workloadLevel, mk func(float64) workload.Spec) *WorkloadResult {
	res := &WorkloadResult{Service: service}
	res.Points = Sweep(opt, levels, func(lv workloadLevel) WorkloadPoint {
		spec := mk(lv.load)
		sh := runPoint(soc.Cshallow, spec, opt)
		ap := runPoint(soc.CPC1A, spec, opt)
		p := WorkloadPoint{
			Label:           lv.label,
			Load:            lv.load,
			QPS:             spec.MeanQPS(),
			CC0Residency:    sh.tracer.MeanResidency(cpu.CC0),
			CC1Residency:    sh.tracer.MeanResidency(cpu.CC1),
			AllIdleTrue:     sh.tracer.AllIdleFraction(),
			AllIdleCensored: sh.tracer.CensoredAllIdleFraction(),
			ShallowWatts:    sh.avgTotalW,
			PC1AWatts:       ap.avgTotalW,
		}
		p.PowerReduction = (p.ShallowWatts - p.PC1AWatts) / p.ShallowWatts
		p.ImpactFrac = modelImpact(ap, sh.srv.Latencies().Mean())
		return p
	})

	// Fully idle server.
	idle := func(kind soc.ConfigKind) float64 {
		s := soc.New(soc.DefaultConfig(kind))
		s.Engine.Run(10 * sim.Millisecond)
		return s.TotalPower()
	}
	shallowIdle := idle(soc.Cshallow)
	res.IdleReduction = 1 - idle(soc.CPC1A)/shallowIdle
	return res
}

// Report implements Result.
func (r *WorkloadResult) Report() string { return r.String() }

// String renders both panels of the figure.
func (r *WorkloadResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s evaluation (paper Fig. 8/9)\n", r.Service)
	fmt.Fprintf(&b, "(a) residency, Cshallow baseline:\n")
	ta := &table{header: []string{"Load", "QPS", "CC0", "CC1", "all-idle (true)", "all-idle (censored)"}}
	for _, p := range r.Points {
		ta.add(fmt.Sprintf("%s (%s)", p.Label, pct(p.Load)),
			fmt.Sprintf("%.0f", p.QPS),
			pct(p.CC0Residency), pct(p.CC1Residency),
			pct(p.AllIdleTrue), pct(p.AllIdleCensored))
	}
	b.WriteString(ta.String())

	fmt.Fprintf(&b, "\n(b) average power reduction of C_PC1A vs Cshallow:\n")
	tb := &table{header: []string{"Load", "Cshallow", "C_PC1A", "Reduction", "Latency impact"}}
	for _, p := range r.Points {
		tb.add(fmt.Sprintf("%s (%s)", p.Label, pct(p.Load)),
			fmt.Sprintf("%.1fW", p.ShallowWatts), fmt.Sprintf("%.1fW", p.PC1AWatts),
			pct(p.PowerReduction), fmt.Sprintf("%+.4f%%", p.ImpactFrac*100))
	}
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "fully idle server reduction: %s (paper: 41%%)\n", pct(r.IdleReduction))
	if r.Service == "MySQL" {
		b.WriteString("paper: all-idle 20-37%, power reduction 7-14%\n")
	} else {
		b.WriteString("paper: PC1A residency 15-47%, power reduction 9-19%\n")
	}
	return b.String()
}
