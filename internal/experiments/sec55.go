package experiments

import (
	"fmt"
	"strings"

	"agilepkgc/internal/cpu"
	"agilepkgc/internal/pmu"
	"agilepkgc/internal/sim"
	"agilepkgc/internal/soc"
)

// Sec55Result reproduces the paper's Sec. 5.5 latency analysis: PC1A
// entry and exit latency broken out and compared with PC6.
type Sec55Result struct {
	// PC1A measured latencies.
	EntryIOWindow sim.Duration // L0s entry window (16 ns)
	EntryFSM      sim.Duration // FSM actions after &InL0s
	Entry         sim.Duration // total blocking entry
	Exit          sim.Duration // wake → uncore restored
	Total         sim.Duration // entry + exit

	// PC6 comparison.
	PC6Entry sim.Duration
	PC6Exit  sim.Duration
	PC6Total sim.Duration

	Speedup float64
}

func init() {
	Define(40, "sec55", "PC1A vs PC6 transition-latency breakdown (paper Sec. 5.5)",
		func(o Options) (Result, error) { return Sec55(o), nil })
}

// Sec55 measures one full transition of each flow.
func Sec55(opt Options) *Sec55Result {
	r := &Sec55Result{}

	// PC1A: settle in PC1A, wake with a core interrupt, re-enter.
	{
		s := soc.New(soc.DefaultConfig(soc.CPC1A))
		var acc1At, pc1aAt sim.Time = -1, -1
		s.APMU.OnTransition(func(old, new pmu.PkgState) {
			switch new {
			case pmu.ACC1:
				if acc1At < 0 {
					acc1At = s.Engine.Now()
				}
			case pmu.PC1A:
				if pc1aAt < 0 {
					pc1aAt = s.Engine.Now()
				}
			}
		})
		// Drive one job so we observe a clean PC0→ACC1→PC1A→(wake)→PC0
		// cycle with fresh timestamps.
		s.Cores[0].Enqueue(cpu.Work{Duration: sim.Microsecond})
		s.Engine.Run(sim.Millisecond)
		if pc1aAt < 0 || acc1At < 0 {
			panic("sec55: PC1A never entered")
		}
		r.EntryFSM = s.APMU.LastEntryLatency()
		r.Entry = pc1aAt - acc1At
		r.EntryIOWindow = r.Entry - r.EntryFSM

		s.Cores[0].Enqueue(cpu.Work{Duration: sim.Microsecond})
		s.Engine.Run(s.Engine.Now() + sim.Millisecond)
		r.Exit = s.APMU.LastExitLatency()
		r.Total = r.Entry + r.Exit
	}

	// PC6: measured the same way as Table 1.
	{
		s := soc.New(soc.DefaultConfig(soc.Cdeep))
		var pc2At, pc6At, pc0At sim.Time = -1, -1, -1
		s.GPMU.OnTransition(func(old, new pmu.PkgState) {
			switch new {
			case pmu.PC2:
				if pc2At < 0 {
					pc2At = s.Engine.Now()
				}
			case pmu.PC6:
				if pc6At < 0 {
					pc6At = s.Engine.Now()
				}
			case pmu.PC0:
				pc0At = s.Engine.Now()
			}
		})
		s.ForceAllCC6()
		r.PC6Entry = pc6At - pc2At
		wakeAt := s.Engine.Now()
		s.Cores[0].Enqueue(cpu.Work{Duration: sim.Microsecond})
		s.Engine.Run(s.Engine.Now() + 5*sim.Millisecond)
		r.PC6Exit = pc0At - wakeAt
		r.PC6Total = r.PC6Entry + r.PC6Exit
	}

	r.Speedup = float64(r.PC6Total) / float64(r.Total)
	return r
}

// Report implements Result.
func (r *Sec55Result) Report() string { return r.String() }

// String renders the latency budget against the paper.
func (r *Sec55Result) String() string {
	var b strings.Builder
	b.WriteString("Sec 5.5: PC1A transition latency\n")
	t := &table{header: []string{"Phase", "Measured", "Paper"}}
	t.add("Entry: IO L0s window", r.EntryIOWindow.String(), "16ns")
	t.add("Entry: APMU FSM actions", r.EntryFSM.String(), "~2ns (1-2 cycles @500MHz)")
	t.add("Entry total (blocking)", r.Entry.String(), "~18ns")
	t.add("Exit (CLM ramp dominated)", r.Exit.String(), "<=150ns")
	t.add("Entry+Exit", r.Total.String(), "<=168ns (budget 200ns)")
	t.add("PC6 entry", r.PC6Entry.String(), "")
	t.add("PC6 exit", r.PC6Exit.String(), "")
	t.add("PC6 entry+exit", r.PC6Total.String(), ">50us")
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\nSpeedup PC6/PC1A: %.0fx (paper: >250x)\n", r.Speedup)
	return b.String()
}
