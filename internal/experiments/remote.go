package experiments

import (
	"fmt"
	"strings"

	"agilepkgc/internal/ios"
	"agilepkgc/internal/pmu"
	"agilepkgc/internal/server"
	"agilepkgc/internal/sim"
	"agilepkgc/internal/soc"
	"agilepkgc/internal/stats"
	"agilepkgc/internal/workload"
)

// RemotePoint is one remote-traffic rate.
type RemotePoint struct {
	SnoopRate     float64 // UPI transactions per second from the peer socket
	PC1AResidency float64
	PC1AEntries   uint64
	Watts         float64
	SavingsFrac   float64 // vs Cshallow at the same load
}

// RemoteResult studies a deployment caveat the paper leaves implicit:
// PC1A requires the *whole socket's* IO to quiesce, so on a two-socket
// node, coherence/snoop traffic arriving over UPI from the peer socket
// wakes the package even when the local cores are idle. This sweep
// quantifies how fast the PC1A opportunity erodes with remote traffic.
type RemoteResult struct {
	QPS    float64
	Points []RemotePoint
}

// DefaultRemoteQPS is the fixed local load of the snoop-rate sweep.
const DefaultRemoteQPS = 20000

// DefaultRemoteRates is the swept peer-socket UPI transaction-rate axis.
var DefaultRemoteRates = []float64{0, 1000, 10000, 50000, 200000}

func init() {
	Define(140, "remote", "PC1A erosion under peer-socket UPI traffic (snoop-rate sweep)",
		func(o Options) (Result, error) { return Remote(o, DefaultRemoteQPS, DefaultRemoteRates), nil })
}

// Remote sweeps the peer-socket UPI transaction rate at a fixed local
// load.
func Remote(opt Options, qps float64, rates []float64) *RemoteResult {
	spec := workload.Memcached(qps)
	res := &RemoteResult{QPS: qps}

	sh := runPoint(soc.Cshallow, spec, opt)

	res.Points = Sweep(opt, rates, func(rate float64) RemotePoint {
		sys := soc.New(soc.DefaultConfig(soc.CPC1A))
		scfg := server.DefaultConfig()
		scfg.Seed = opt.Seed
		srv := server.New(sys, scfg, spec)

		if rate > 0 {
			armSnoops(sys, rate, opt.Seed+99)
		}
		srv.Run(opt.Duration / 10)
		snap := sys.Meter.Snapshot()
		t0 := sys.Engine.Now()
		entries0 := sys.APMU.Entries(pmu.PC1A)
		res0 := sys.APMU.Residency(pmu.PC1A)
		srv.Run(opt.Duration)

		p := RemotePoint{
			SnoopRate: rate,
			Watts:     snap.AverageTotal(),
			PC1AResidency: float64(sys.APMU.Residency(pmu.PC1A)-res0) /
				float64(sys.Engine.Now()-t0),
			PC1AEntries: sys.APMU.Entries(pmu.PC1A) - entries0,
		}
		p.SavingsFrac = (sh.avgTotalW - p.Watts) / sh.avgTotalW
		return p
	})
	return res
}

// armSnoops injects Poisson UPI transactions (remote snoops / remote
// memory reads) on the first UPI link, each also touching local DRAM.
func armSnoops(sys *soc.System, rate float64, seed uint64) {
	rng := stats.NewRNG(seed)
	var upi *ios.Link
	for _, l := range sys.Links {
		if l.Kind() == ios.UPI {
			upi = l
			break
		}
	}
	var next func()
	next = func() {
		upi.StartTransaction()
		// Snoop service: link transfer plus an LLC/DRAM lookup.
		sys.MemAccess(1)
		sys.Engine.Schedule(200*sim.Nanosecond, upi.EndTransaction)
		gap := sim.Duration(rng.ExpFloat64() / rate * float64(sim.Second))
		sys.Engine.Schedule(gap, next)
	}
	sys.Engine.Schedule(sim.Duration(rng.ExpFloat64()/rate*float64(sim.Second)), next)
}

// Report implements Result.
func (r *RemoteResult) Report() string { return r.String() }

// String renders the sweep.
func (r *RemoteResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Deployment study: PC1A vs peer-socket UPI traffic (local load %.0f QPS)\n", r.QPS)
	t := &table{header: []string{"Remote rate", "PC1A residency", "PC1A entries", "Power", "Savings vs Cshallow"}}
	for _, p := range r.Points {
		t.add(fmt.Sprintf("%.0f/s", p.SnoopRate), pct(p.PC1AResidency),
			fmt.Sprintf("%d", p.PC1AEntries), fmt.Sprintf("%.1fW", p.Watts), pct(p.SavingsFrac))
	}
	b.WriteString(t.String())
	b.WriteString("PC1A needs whole-socket IO quiescence, but each wake costs only ~0.5us,\n")
	b.WriteString("so even heavy remote traffic erodes the opportunity slowly — the agility\n")
	b.WriteString("bounds the damage where PC6 would lose everything.\n")
	return b.String()
}
