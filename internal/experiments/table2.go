package experiments

import (
	"strings"

	"agilepkgc/internal/dram"
	"agilepkgc/internal/ios"
	"agilepkgc/internal/sim"
	"agilepkgc/internal/soc"
)

// Table2Row captures the device configuration observed in one package
// C-state — paper Table 2's columns.
type Table2Row struct {
	State   string
	CoresIn string
	L3Cache string // "Accessible" / "Retention"
	PLLs    string // "On" / "Off"
	PCIeDMI string // L-state
	UPI     string
	DRAM    string // "Available" / "Self Refresh" / "CKE off"
}

// Table2Result holds the observed matrix.
type Table2Result struct {
	Rows []Table2Row
}

func init() {
	Define(20, "table2", "state-availability matrix per package C-state (paper Table 2)",
		func(o Options) (Result, error) { return Table2(o), nil })
}

// Table2 drives each configuration into its package C-state and reads
// the *actual* device states out of the simulator — the matrix is
// observed, not transcribed.
func Table2(opt Options) *Table2Result {
	res := &Table2Result{}

	describe := func(s *soc.System, state, cores string) Table2Row {
		row := Table2Row{State: state, CoresIn: cores}
		if s.CLM.Accessible() {
			row.L3Cache = "Accessible"
		} else if s.CLM.AtRetentionVoltage() {
			row.L3Cache = "Retention"
		} else {
			row.L3Cache = "Gated"
		}
		allOn := true
		for _, p := range s.PLLs {
			if !p.Locked() {
				allOn = false
			}
		}
		if allOn {
			row.PLLs = "On"
		} else {
			row.PLLs = "Off"
		}
		var pcie, upi ios.LState
		for _, l := range s.Links {
			if l.Kind() == ios.UPI {
				upi = l.State()
			} else {
				pcie = l.State()
			}
		}
		row.PCIeDMI = pcie.String()
		if upi == ios.L0s {
			row.UPI = "L0p" // UPI's standby is partial width
		} else {
			row.UPI = upi.String()
		}
		switch s.MCs[0].Mode() {
		case dram.Active:
			row.DRAM = "Available"
		case dram.PowerDown:
			row.DRAM = "CKE off"
		case dram.SelfRefresh:
			row.DRAM = "Self Refresh"
		}
		return row
	}

	// PC0: active Cshallow system.
	{
		s := soc.New(soc.DefaultConfig(soc.Cshallow))
		s.Cores[0].Enqueue(cpuBusyWork())
		s.Engine.Run(sim.Millisecond)
		res.Rows = append(res.Rows, describe(s, "PC0", ">=1 in CC0"))
	}
	// PC6: forced-deep Cdeep system.
	{
		s := soc.New(soc.DefaultConfig(soc.Cdeep))
		s.ForceAllCC6()
		res.Rows = append(res.Rows, describe(s, "PC6", "All in CC6"))
	}
	// PC1A: idle CPC1A system.
	{
		s := soc.New(soc.DefaultConfig(soc.CPC1A))
		s.Engine.Run(sim.Millisecond)
		res.Rows = append(res.Rows, describe(s, "PC1A", "All in CC1"))
	}
	return res
}

// Report implements Result.
func (r *Table2Result) Report() string { return r.String() }

// String renders the observed matrix next to the paper's.
func (r *Table2Result) String() string {
	t := &table{header: []string{"PCx", "Cores in CCx", "L3 Cache", "PLLs", "PCIe/DMI", "UPI", "DRAM"}}
	for _, row := range r.Rows {
		t.add(row.State, row.CoresIn, row.L3Cache, row.PLLs, row.PCIeDMI, row.UPI, row.DRAM)
	}
	var b strings.Builder
	b.WriteString("Table 2: observed package C-state characteristics\n")
	b.WriteString(t.String())
	b.WriteString("\nPaper: PC0 = Accessible/On/L0/L0/Available;")
	b.WriteString(" PC6 = Retention/Off/L1/L1/Self Refresh;")
	b.WriteString(" PC1A = Retention/On/L0s/L0p/CKE off\n")
	return b.String()
}
