package clock

import (
	"math"
	"testing"

	"agilepkgc/internal/power"
	"agilepkgc/internal/sim"
)

func TestPLLStateString(t *testing.T) {
	if PLLOff.String() != "off" || PLLLocking.String() != "locking" || PLLLocked.String() != "locked" {
		t.Fatal("state names wrong")
	}
	if PLLState(7).String() != "PLLState(7)" {
		t.Fatal("unknown state format wrong")
	}
}

func TestPLLStartsLocked(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPLL(eng, "clm", DefaultRelockLatency, nil)
	if !p.Locked() || p.State() != PLLLocked {
		t.Fatal("PLL should start locked")
	}
	if p.Name() != "clm" {
		t.Fatal("name wrong")
	}
	if p.RelockLatency() != DefaultRelockLatency {
		t.Fatal("relock latency wrong")
	}
}

func TestPLLOffOnRelock(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPLL(eng, "x", 3*sim.Microsecond, nil)
	lockedAt := sim.Time(-1)
	p.OnLocked(func() { lockedAt = eng.Now() })

	p.TurnOff()
	if p.Locked() || p.State() != PLLOff {
		t.Fatal("TurnOff failed")
	}
	eng.Run(sim.Microsecond)
	p.TurnOn()
	if p.State() != PLLLocking {
		t.Fatal("should be locking")
	}
	eng.Run(3 * sim.Microsecond)
	if p.Locked() {
		t.Fatal("locked too early: re-lock takes 3us from TurnOn at 1us")
	}
	eng.Run(4 * sim.Microsecond)
	if !p.Locked() {
		t.Fatal("should be locked after relock latency")
	}
	if lockedAt != 4*sim.Microsecond {
		t.Fatalf("OnLocked at %v, want 4us", lockedAt)
	}
}

func TestPLLIdempotentTransitions(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPLL(eng, "x", sim.Microsecond, nil)
	locks := 0
	p.OnLocked(func() { locks++ })
	p.TurnOn() // already locked: no-op
	eng.Run(2 * sim.Microsecond)
	if locks != 0 {
		t.Fatal("TurnOn on locked PLL should not re-fire OnLocked")
	}
	p.TurnOff()
	p.TurnOff()
	p.TurnOn()
	p.TurnOn() // locking: no-op
	eng.Run(4 * sim.Microsecond)
	if locks != 1 {
		t.Fatalf("OnLocked fired %d times, want 1", locks)
	}
}

func TestPLLTurnOffDuringLockingCancels(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPLL(eng, "x", sim.Microsecond, nil)
	locks := 0
	p.OnLocked(func() { locks++ })
	p.TurnOff()
	p.TurnOn()
	eng.Run(500 * sim.Nanosecond)
	p.TurnOff() // abort the lock
	eng.Run(5 * sim.Microsecond)
	if locks != 0 || p.State() != PLLOff {
		t.Fatalf("aborted lock still completed: locks=%d state=%v", locks, p.State())
	}
}

func TestPLLPowerAccounting(t *testing.T) {
	eng := sim.NewEngine()
	m := power.NewMeter(eng)
	ch := m.Channel("pll", power.Package)
	p := NewPLL(eng, "x", sim.Microsecond, ch)
	if w := m.Power(power.Package); w != ADPLLPowerWatts {
		t.Fatalf("locked PLL power %v, want %v", w, ADPLLPowerWatts)
	}
	p.TurnOff()
	if w := m.Power(power.Package); w != 0 {
		t.Fatalf("off PLL power %v, want 0", w)
	}
	p.TurnOn() // locking consumes power
	if w := m.Power(power.Package); w != ADPLLPowerWatts {
		t.Fatalf("locking PLL power %v, want %v", w, ADPLLPowerWatts)
	}
	// Energy over 1 ms locked ≈ 7 µJ.
	eng.Run(eng.Now() + sim.Millisecond)
	e := m.Energy(power.Package)
	if math.Abs(e-7e-6) > 1e-9 {
		t.Fatalf("PLL energy %v J, want ~7e-6", e)
	}
}

func TestTreeGating(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPLL(eng, "clm", sim.Microsecond, nil)
	tr := NewTree("clm", p)
	if tr.Name() != "clm" {
		t.Fatal("tree name wrong")
	}
	if !tr.Running() || tr.Gated() {
		t.Fatal("tree should start running")
	}
	tr.Gate()
	if tr.Running() || !tr.Gated() {
		t.Fatal("Gate failed")
	}
	tr.Gate() // idempotent
	tr.Ungate()
	if !tr.Running() {
		t.Fatal("Ungate failed")
	}
}

func TestTreeNotRunningWhenPLLOff(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPLL(eng, "clm", sim.Microsecond, nil)
	tr := NewTree("clm", p)
	p.TurnOff()
	if tr.Running() {
		t.Fatal("tree cannot run without a locked PLL")
	}
}

func TestUngateWithUnlockedPLLPanics(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPLL(eng, "clm", sim.Microsecond, nil)
	tr := NewTree("clm", p)
	tr.Gate()
	p.TurnOff()
	defer func() {
		if recover() == nil {
			t.Fatal("Ungate with PLL off must panic")
		}
	}()
	tr.Ungate()
}

// The PC1A-vs-PC6 asymmetry in one test: keeping the PLL locked costs
// 7 mW but lets the clock restart in 0 ns of PLL time; turning it off
// saves 7 mW but costs a microsecond-scale relock.
func TestRelockVsGateAsymmetry(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPLL(eng, "clm", 3*sim.Microsecond, nil)
	tr := NewTree("clm", p)

	// PC1A-style: gate only.
	tr.Gate()
	tr.Ungate()
	if !tr.Running() {
		t.Fatal("gate/ungate should restore the clock with no PLL delay")
	}

	// PC6-style: PLL off.
	tr.Gate()
	p.TurnOff()
	p.TurnOn()
	eng.Run(eng.Now() + p.RelockLatency())
	tr.Ungate()
	if !tr.Running() {
		t.Fatal("clock should be restored after relock")
	}
}
