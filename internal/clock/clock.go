// Package clock models the SoC clock distribution: all-digital
// phase-locked loops (ADPLLs) with lock/re-lock latency and per-domain
// clock-tree gating.
//
// The fourth APC technique (paper Sec. 1, 4.3) is precisely about this
// package: PC6 turns PLLs off and pays a multi-microsecond re-lock on
// exit, while PC1A keeps every PLL locked (at ~7 mW per ADPLL) and only
// gates clock trees, which takes 1–2 cycles.
package clock

import (
	"fmt"

	"agilepkgc/internal/power"
	"agilepkgc/internal/sim"
)

// Electrical constants from the paper and its references.
const (
	// ADPLLPowerWatts is the per-PLL power of a modern all-digital PLL
	// (paper Sec. 5.4, citing [25]): 7 mW, roughly constant across
	// voltage/frequency.
	ADPLLPowerWatts = 0.007

	// DefaultRelockLatency is the time to re-lock a powered-off PLL
	// (paper: "a few microseconds").
	DefaultRelockLatency = 3 * sim.Microsecond
)

// PLLState enumerates PLL operating states.
type PLLState int

const (
	// PLLOff: powered down, no output clock.
	PLLOff PLLState = iota
	// PLLLocking: powering up, output not yet usable.
	PLLLocking
	// PLLLocked: stable output clock.
	PLLLocked
)

// String returns the state name.
func (s PLLState) String() string {
	switch s {
	case PLLOff:
		return "off"
	case PLLLocking:
		return "locking"
	case PLLLocked:
		return "locked"
	default:
		return fmt.Sprintf("PLLState(%d)", int(s))
	}
}

// PLL is an all-digital phase-locked loop.
type PLL struct {
	eng    *sim.Engine
	name   string
	state  PLLState
	relock sim.Duration
	ch     *power.Channel

	lockEv   sim.Event
	onLocked []func()
}

// NewPLL creates a locked PLL (systems boot with clocks running) and
// registers its power channel. ch may be nil for tests that do not
// account power.
func NewPLL(eng *sim.Engine, name string, relock sim.Duration, ch *power.Channel) *PLL {
	p := &PLL{eng: eng, name: name, state: PLLLocked, relock: relock, ch: ch}
	if ch != nil {
		ch.Set(ADPLLPowerWatts)
	}
	return p
}

// Name returns the PLL name.
func (p *PLL) Name() string { return p.name }

// State returns the current state.
func (p *PLL) State() PLLState { return p.state }

// Locked reports whether the output clock is usable.
func (p *PLL) Locked() bool { return p.state == PLLLocked }

// RelockLatency returns the configured power-on lock time.
func (p *PLL) RelockLatency() sim.Duration { return p.relock }

// OnLocked registers a callback fired every time the PLL reaches lock.
func (p *PLL) OnLocked(fn func()) { p.onLocked = append(p.onLocked, fn) }

// TurnOff powers the PLL down immediately. Its clock consumers must have
// been gated first; this model does not enforce that ordering, the PMU
// flows do.
func (p *PLL) TurnOff() {
	if p.state == PLLOff {
		return
	}
	p.lockEv.Cancel()
	p.lockEv = sim.Event{}
	p.state = PLLOff
	if p.ch != nil {
		p.ch.Set(0)
	}
}

// TurnOn begins powering up; the PLL reaches lock after its re-lock
// latency. Turning on a locking or locked PLL is a no-op.
func (p *PLL) TurnOn() {
	if p.state != PLLOff {
		return
	}
	p.state = PLLLocking
	if p.ch != nil {
		p.ch.Set(ADPLLPowerWatts)
	}
	p.lockEv = p.eng.Schedule(p.relock, func() {
		p.lockEv = sim.Event{}
		p.state = PLLLocked
		for _, fn := range p.onLocked {
			fn()
		}
	})
}

// Tree is a clock distribution tree for one domain. Gating stops the
// clock at the root (dynamic power drops in its consumers) without
// touching the PLL. Gate/ungate completes within 1–2 cycles of the
// controlling PMU; that latency is charged by the caller (the PMU FSM),
// because it is the PMU's cycle, not the tree's.
type Tree struct {
	name  string
	pll   *PLL
	gated bool
}

// NewTree creates an ungated tree fed by the given PLL.
func NewTree(name string, pll *PLL) *Tree {
	return &Tree{name: name, pll: pll}
}

// Name returns the tree name.
func (t *Tree) Name() string { return t.name }

// Gate stops the clock. Idempotent.
func (t *Tree) Gate() { t.gated = true }

// Ungate restarts the clock. Ungating with an unlocked PLL panics: the
// hardware would glitch, and a PMU flow that does this is buggy.
func (t *Tree) Ungate() {
	if !t.pll.Locked() {
		panic(fmt.Sprintf("clock: ungating %s with PLL %s in state %s", t.name, t.pll.Name(), t.pll.State()))
	}
	t.gated = false
}

// Gated reports whether the tree is gated.
func (t *Tree) Gated() bool { return t.gated }

// Running reports whether consumers receive a clock: PLL locked and tree
// ungated.
func (t *Tree) Running() bool { return !t.gated && t.pll.Locked() }
