module agilepkgc

go 1.24
